#include "tensor/gemm.hpp"

#include <algorithm>
#include <bit>
#include <type_traits>
#include <vector>

#include "common/threadpool.hpp"

namespace xflow {

namespace {
// Cache blocking. The packed A block (kMB x kKB floats) and B block
// (kKB x kNB) together stay within L2; the accumulator tile row fits in L1.
constexpr std::int64_t kMB = 64;
constexpr std::int64_t kNB = 96;
constexpr std::int64_t kKB = 256;

// Register blocking for the micro-kernel: a kMR x kNR accumulator patch
// lives in registers for the whole K-block loop, so the inner loop does
// one B-row load and kMR broadcast-FMAs per K step instead of a
// load+store of the accumulator per multiply like the old scalar kernel.
// 8 x 16 gives eight independent accumulator vectors -- enough to cover
// FMA latency on two issue ports.
constexpr std::int64_t kMR = 8;
constexpr std::int64_t kNR = 16;

static_assert(kMB % kMR == 0 && kNB % kNR == 0,
              "macro tiles must divide evenly into register tiles");

// Per-thread pack/accumulate scratch: each macro-tile task packs its own
// fp32 A/B blocks, so threads never share mutable buffers.
struct Scratch {
  std::vector<float> a_pack, b_pack, acc;
};

Scratch& TlsScratch() {
  thread_local Scratch s;
  if (s.acc.empty()) {
    s.a_pack.resize(static_cast<std::size_t>(kMB * kKB));
    s.b_pack.resize(static_cast<std::size_t>(kKB * kNB));
    s.acc.resize(static_cast<std::size_t>(kMB * kNB));
  }
  return s;
}

// Offset tables for row-major-ish layouts are affine (constant stride);
// detecting that once per call lets the pack and writeback loops use
// direct strided addressing, which vectorizes, instead of a per-element
// table load, which does not. Non-affine tables keep the general path.
struct Affine {
  bool yes = false;
  std::int64_t stride = 0;
};

Affine DetectAffine(std::span<const std::int64_t> t) {
  if (t.size() < 2) return {true, 0};
  const std::int64_t s = t[1] - t[0];
  for (std::size_t i = 2; i < t.size(); ++i) {
    if (t[i] - t[i - 1] != s) return {};
  }
  return {true, s};
}

/// acc[kMR][kNR] += A-strip[kMR][kb] * B-panel[kb][kNR]. The K loop is
/// the only float-accumulation loop, executed in ascending k order, so
/// the per-element operation sequence is fixed regardless of threading.
#if defined(__GNUC__) || defined(__clang__)
// A kNR-wide float vector (one ZMM with AVX-512, lowered to narrower ops
// or scalars on lesser targets). aligned(4): loads need only float
// alignment; may_alias: we view plain float buffers through it.
using Vec
    __attribute__((vector_size(kNR * sizeof(float)), aligned(4), may_alias))
    = float;

// noinline: inlined into the tile loop the kernel competes with the
// packing/driver state for integer registers and GCC ends up reloading
// the eight A-row offsets every K iteration, halving throughput.
__attribute__((noinline)) void MicroTile(const float* a, std::int64_t lda,
                                         const float* b, std::int64_t ldb,
                                         std::int64_t kb, float* acc,
                                         std::int64_t ldc) {
  // Eight accumulator vectors stay in registers for the whole K loop;
  // writing this with explicit Vec locals (rather than float arrays)
  // keeps GCC from spilling them to the stack every iteration.
  Vec c0 = *reinterpret_cast<const Vec*>(acc);
  Vec c1 = *reinterpret_cast<const Vec*>(acc + ldc);
  Vec c2 = *reinterpret_cast<const Vec*>(acc + 2 * ldc);
  Vec c3 = *reinterpret_cast<const Vec*>(acc + 3 * ldc);
  Vec c4 = *reinterpret_cast<const Vec*>(acc + 4 * ldc);
  Vec c5 = *reinterpret_cast<const Vec*>(acc + 5 * ldc);
  Vec c6 = *reinterpret_cast<const Vec*>(acc + 6 * ldc);
  Vec c7 = *reinterpret_cast<const Vec*>(acc + 7 * ldc);
  for (std::int64_t k = 0; k < kb; ++k) {
    const Vec bv = *reinterpret_cast<const Vec*>(b + k * ldb);
    c0 += bv * a[k];
    c1 += bv * a[lda + k];
    c2 += bv * a[2 * lda + k];
    c3 += bv * a[3 * lda + k];
    c4 += bv * a[4 * lda + k];
    c5 += bv * a[5 * lda + k];
    c6 += bv * a[6 * lda + k];
    c7 += bv * a[7 * lda + k];
  }
  *reinterpret_cast<Vec*>(acc) = c0;
  *reinterpret_cast<Vec*>(acc + ldc) = c1;
  *reinterpret_cast<Vec*>(acc + 2 * ldc) = c2;
  *reinterpret_cast<Vec*>(acc + 3 * ldc) = c3;
  *reinterpret_cast<Vec*>(acc + 4 * ldc) = c4;
  *reinterpret_cast<Vec*>(acc + 5 * ldc) = c5;
  *reinterpret_cast<Vec*>(acc + 6 * ldc) = c6;
  *reinterpret_cast<Vec*>(acc + 7 * ldc) = c7;
}
#else
inline void MicroTile(const float* a, std::int64_t lda, const float* b,
                      std::int64_t ldb, std::int64_t kb, float* acc,
                      std::int64_t ldc) {
  float c[kMR][kNR];
  for (std::int64_t r = 0; r < kMR; ++r) {
    for (std::int64_t n = 0; n < kNR; ++n) c[r][n] = acc[r * ldc + n];
  }
  for (std::int64_t k = 0; k < kb; ++k) {
    const float* bk = b + k * ldb;
    for (std::int64_t r = 0; r < kMR; ++r) {
      const float av = a[r * lda + k];
      for (std::int64_t n = 0; n < kNR; ++n) c[r][n] += av * bk[n];
    }
  }
  for (std::int64_t r = 0; r < kMR; ++r) {
    for (std::int64_t n = 0; n < kNR; ++n) acc[r * ldc + n] = c[r][n];
  }
}
#endif

/// Ragged-edge fallback for partial register tiles (mr < kMR or nr < kNR).
/// Same ascending-k accumulation order per output element as MicroTile.
inline void MicroEdge(const float* a, std::int64_t lda, std::int64_t mr,
                      const float* b, std::int64_t ldb, std::int64_t nr,
                      std::int64_t kb, float* acc, std::int64_t ldc) {
  for (std::int64_t r = 0; r < mr; ++r) {
    const float* ar = a + r * lda;
    float* accrow = acc + r * ldc;
    for (std::int64_t k = 0; k < kb; ++k) {
      const float av = ar[k];
      const float* bk = b + k * ldb;
      for (std::int64_t n = 0; n < nr; ++n) accrow[n] += av * bk[n];
    }
  }
}

/// Computes one kMB x kNB output macro-tile at (m0, n0), start to finish:
/// pack, accumulate over all K blocks, write back. Tiles are disjoint in C
/// and use thread-local scratch, so any assignment of tiles to threads
/// yields bitwise-identical results.
template <typename TIn, typename TOut>
void GemmTile(const TIn* a, const TIn* b, TOut* c,
              std::span<const std::int64_t> a_m,
              std::span<const std::int64_t> a_k,
              std::span<const std::int64_t> b_k,
              std::span<const std::int64_t> b_n,
              std::span<const std::int64_t> c_m,
              std::span<const std::int64_t> c_n, float alpha, float beta,
              std::int64_t m0, std::int64_t n0, Affine ak_aff, Affine bn_aff,
              Affine cn_aff) {
  const auto m_total = static_cast<std::int64_t>(a_m.size());
  const auto n_total = static_cast<std::int64_t>(b_n.size());
  const auto k_total = static_cast<std::int64_t>(a_k.size());
  const std::int64_t mb = std::min(kMB, m_total - m0);
  const std::int64_t nb = std::min(kNB, n_total - n0);

  Scratch& s = TlsScratch();
  float* a_pack = s.a_pack.data();
  float* b_pack = s.b_pack.data();
  float* acc = s.acc.data();
  std::fill(acc, acc + mb * nb, 0.0f);

  for (std::int64_t k0 = 0; k0 < k_total; k0 += kKB) {
    const std::int64_t kb = std::min(kKB, k_total - k0);
    // Pack A block as [mb][kb] and B block as [kb][nb], converting to
    // fp32 once so the inner loop is pure fp32 FMA.
    for (std::int64_t m = 0; m < mb; ++m) {
      const std::int64_t am = a_m[static_cast<std::size_t>(m0 + m)];
      float* dst = &a_pack[static_cast<std::size_t>(m * kb)];
      if (ak_aff.yes) {
        const TIn* src = a + am + a_k[static_cast<std::size_t>(k0)];
        const std::int64_t s = ak_aff.stride;
        for (std::int64_t k = 0; k < kb; ++k) dst[k] = float(src[k * s]);
      } else {
        for (std::int64_t k = 0; k < kb; ++k) {
          dst[k] = float(a[am + a_k[static_cast<std::size_t>(k0 + k)]]);
        }
      }
    }
    for (std::int64_t k = 0; k < kb; ++k) {
      const std::int64_t bk = b_k[static_cast<std::size_t>(k0 + k)];
      float* dst = &b_pack[static_cast<std::size_t>(k * nb)];
      if (bn_aff.yes) {
        const TIn* src = b + bk + b_n[static_cast<std::size_t>(n0)];
        const std::int64_t s = bn_aff.stride;
        for (std::int64_t n = 0; n < nb; ++n) dst[n] = float(src[n * s]);
      } else {
        for (std::int64_t n = 0; n < nb; ++n) {
          dst[n] = float(b[bk + b_n[static_cast<std::size_t>(n0 + n)]]);
        }
      }
    }
    // Register-blocked accumulation over the packed blocks.
    std::int64_t m = 0;
    for (; m + kMR <= mb; m += kMR) {
      std::int64_t n = 0;
      for (; n + kNR <= nb; n += kNR) {
        MicroTile(&a_pack[m * kb], kb, &b_pack[n], nb, kb, &acc[m * nb + n],
                  nb);
      }
      if (n < nb) {
        MicroEdge(&a_pack[m * kb], kb, kMR, &b_pack[n], nb, nb - n, kb,
                  &acc[m * nb + n], nb);
      }
    }
    if (m < mb) {
      MicroEdge(&a_pack[m * kb], kb, mb - m, b_pack, nb, nb, kb, &acc[m * nb],
                nb);
    }
  }

  for (std::int64_t m = 0; m < mb; ++m) {
    const std::int64_t cm = c_m[static_cast<std::size_t>(m0 + m)];
    const float* accrow = &acc[static_cast<std::size_t>(m * nb)];
    if (cn_aff.yes && beta == 0.0f) {
      TOut* dst = c + cm + c_n[static_cast<std::size_t>(n0)];
      const std::int64_t s = cn_aff.stride;
      for (std::int64_t n = 0; n < nb; ++n) {
        dst[n * s] = TOut(alpha * accrow[n] + 0.0f);
      }
    } else {
      for (std::int64_t n = 0; n < nb; ++n) {
        TOut& dst = c[cm + c_n[static_cast<std::size_t>(n0 + n)]];
        const float prior = beta == 0.0f ? 0.0f : beta * float(dst);
        dst = TOut(alpha * accrow[n] + prior);
      }
    }
  }
}

}  // namespace

std::int64_t GemmTileCount(std::int64_t m, std::int64_t n) {
  return ((m + kMB - 1) / kMB) * ((n + kNB - 1) / kNB);
}

template <typename TIn, typename TOut>
void GemmOffsets(const TIn* a, const TIn* b, TOut* c,
                 std::span<const std::int64_t> a_m,
                 std::span<const std::int64_t> a_k,
                 std::span<const std::int64_t> b_k,
                 std::span<const std::int64_t> b_n,
                 std::span<const std::int64_t> c_m,
                 std::span<const std::int64_t> c_n, float alpha, float beta) {
  const auto m_total = static_cast<std::int64_t>(a_m.size());
  const auto n_total = static_cast<std::int64_t>(b_n.size());
  if (m_total == 0 || n_total == 0) return;

  const Affine ak_aff = DetectAffine(a_k);
  const Affine bn_aff = DetectAffine(b_n);
  const Affine cn_aff = DetectAffine(c_n);
  const std::int64_t m_tiles = (m_total + kMB - 1) / kMB;
  const std::int64_t n_tiles = (n_total + kNB - 1) / kNB;
  ParallelFor(m_tiles * n_tiles, 1, [&](std::int64_t t) {
    const std::int64_t m0 = (t / n_tiles) * kMB;
    const std::int64_t n0 = (t % n_tiles) * kNB;
    GemmTile(a, b, c, a_m, a_k, b_k, b_n, c_m, c_n, alpha, beta, m0, n0,
             ak_aff, bn_aff, cn_aff);
  });
}

namespace {

// Shared writeback for the specialized kernels -- the exact float-op
// sequence of GemmTile's general writeback branch, so a specialized
// class is bitwise identical to the generic pipeline for any beta
// (LoweredHalfBits produces Half::FromFloat's bits exactly).
template <typename TOut>
inline TOut StoreOut(float v) {
  if constexpr (std::is_same_v<TOut, Half>) {
    return Half::FromBits(LoweredHalfBits(v));
  } else {
    return TOut(v);
  }
}

template <typename TOut>
inline void WriteBack(TOut& dst, float acc, float alpha, float beta) {
  const float prior = beta == 0.0f ? 0.0f : beta * float(dst);
  dst = StoreOut<TOut>(alpha * acc + prior);
}

}  // namespace

std::uint16_t LoweredHalfBits(float f) {
  const std::uint32_t u = std::bit_cast<std::uint32_t>(f);
  const std::uint32_t sign = (u >> 16) & 0x8000u;
  const std::uint32_t au = u & 0x7FFF'FFFFu;
  // Normal range: round the 13 excess mantissa bits to nearest-even by
  // adding 0x0FFF plus the round-to-odd bit directly on the float bits
  // (a mantissa carry bumps the exponent for free), then rebias the
  // exponent by 127 - 15. Values past the half range saturate at the Inf
  // pattern; NaN squashes to the same quiet NaN FromFloat produces.
  std::uint32_t n = ((au + 0x0FFFu + ((au >> 13) & 1u)) >> 13) - (112u << 10);
  n = n > 0x7C00u ? 0x7C00u : n;
  n = au > 0x7F80'0000u ? 0x7E00u : n;
  // Subnormal range (|f| < 2^-14): adding 0.5f aligns the value's bits to
  // the half-subnormal grid (ulp 2^-24 == ulp of 0.5f) and the float
  // adder's round-to-nearest-even performs the rounding; subtracting the
  // 0.5f pattern leaves exactly the rounded subnormal payload (underflow
  // falls out as zero).
  const std::uint32_t s =
      std::bit_cast<std::uint32_t>(std::bit_cast<float>(au) +
                                   std::bit_cast<float>(0x3F00'0000u)) -
      0x3F00'0000u;
  const std::uint32_t out = au >= 0x3880'0000u ? n : s;
  return static_cast<std::uint16_t>(sign | out);
}

template <typename TIn, typename TOut>
void GemvOffsets(const TIn* a, const TIn* x, TOut* y,
                 std::span<const std::int64_t> a_m,
                 std::span<const std::int64_t> a_k,
                 std::span<const std::int64_t> x_k,
                 std::span<const std::int64_t> y_m, float alpha, float beta,
                 std::int64_t row_grain) {
  const auto rows = static_cast<std::int64_t>(a_m.size());
  const auto k_total = static_cast<std::int64_t>(a_k.size());
  if (rows == 0) return;
  // Convert the shared vector operand to fp32 once for the whole call
  // (the generic path gets this from packing); every row re-reading it
  // through the offset table would pay a table load plus a conversion
  // per multiply. Same float values, so results are bit-identical.
  std::vector<float> xf(static_cast<std::size_t>(k_total));
  for (std::int64_t k = 0; k < k_total; ++k) {
    xf[static_cast<std::size_t>(k)] =
        float(x[x_k[static_cast<std::size_t>(k)]]);
  }
  ParallelFor(rows, row_grain, [&](std::int64_t r) {
    const TIn* ar = a + a_m[static_cast<std::size_t>(r)];
    // One serial ascending-k chain per output element, accumulating
    // fp32 products from 0.0f -- the same sequence the packed
    // micro-kernels execute for this element.
    float acc = 0.0f;
    for (std::int64_t k = 0; k < k_total; ++k) {
      acc += float(ar[a_k[static_cast<std::size_t>(k)]]) *
             xf[static_cast<std::size_t>(k)];
    }
    WriteBack(y[y_m[static_cast<std::size_t>(r)]], acc, alpha, beta);
  });
}

template <typename TIn, typename TOut>
void GerOffsets(const TIn* a, const TIn* b, TOut* c,
                std::span<const std::int64_t> a_m,
                std::span<const std::int64_t> b_n,
                std::span<const std::int64_t> c_m,
                std::span<const std::int64_t> c_n, float alpha, float beta,
                std::int64_t row_grain) {
  const auto rows = static_cast<std::int64_t>(a_m.size());
  const auto cols = static_cast<std::int64_t>(b_n.size());
  if (rows == 0 || cols == 0) return;
  // Convert the column vector to fp32 once for the whole call instead of
  // once per output element (rows x cols conversions otherwise -- the
  // entire reason the packed pipeline was beating this kernel). Same
  // float values, so results are bit-identical.
  std::vector<float> bf(static_cast<std::size_t>(cols));
  for (std::int64_t n = 0; n < cols; ++n) {
    bf[static_cast<std::size_t>(n)] =
        float(b[b_n[static_cast<std::size_t>(n)]]);
  }
  const Affine c_aff = DetectAffine(c_n);
  const bool contiguous = c_aff.yes && c_aff.stride == 1 && cols > 1;
  ParallelFor(rows, row_grain, [&](std::int64_t r) {
    const float av = float(a[a_m[static_cast<std::size_t>(r)]]);
    TOut* crow = c + c_m[static_cast<std::size_t>(r)];
    if (contiguous && beta == 0.0f) {
      // Unit-stride output row and no prior term: a pure elementwise
      // multiply + branch-free convert, which vectorizes. The general
      // loop below cannot -- the offset-table store is a scatter and the
      // beta path's Half load converts through branchy code.
      TOut* cp = crow + c_n[0];
      for (std::int64_t n = 0; n < cols; ++n) {
        float acc = 0.0f;
        acc += av * bf[static_cast<std::size_t>(n)];
        cp[n] = StoreOut<TOut>(alpha * acc);
      }
    } else {
      for (std::int64_t n = 0; n < cols; ++n) {
        float acc = 0.0f;
        acc += av * bf[static_cast<std::size_t>(n)];
        WriteBack(crow[c_n[static_cast<std::size_t>(n)]], acc, alpha, beta);
      }
    }
  });
}

template <typename TIn, typename TOut>
void DotOffsets(const TIn* a, const TIn* b, TOut* c,
                std::span<const std::int64_t> a_k,
                std::span<const std::int64_t> b_k, float alpha, float beta) {
  const auto k_total = static_cast<std::int64_t>(a_k.size());
  float acc = 0.0f;
  for (std::int64_t k = 0; k < k_total; ++k) {
    acc += float(a[a_k[static_cast<std::size_t>(k)]]) *
           float(b[b_k[static_cast<std::size_t>(k)]]);
  }
  WriteBack(c[0], acc, alpha, beta);
}

template <typename TIn, typename TOut>
void ScaledCopyOffsets(const TIn* vec, float scalar, TOut* out,
                       std::span<const std::int64_t> vec_t,
                       std::span<const std::int64_t> out_t, float alpha,
                       float beta, std::int64_t row_grain) {
  const auto rows = static_cast<std::int64_t>(vec_t.size());
  if (rows == 0) return;
  ParallelFor(rows, row_grain, [&](std::int64_t r) {
    float acc = 0.0f;
    acc += float(vec[vec_t[static_cast<std::size_t>(r)]]) * scalar;
    WriteBack(out[out_t[static_cast<std::size_t>(r)]], acc, alpha, beta);
  });
}

#define XFLOW_INSTANTIATE_LOWERED(TIn, TOut)                                  \
  template void GemvOffsets<TIn, TOut>(                                       \
      const TIn*, const TIn*, TOut*, std::span<const std::int64_t>,           \
      std::span<const std::int64_t>, std::span<const std::int64_t>,           \
      std::span<const std::int64_t>, float, float, std::int64_t);             \
  template void GerOffsets<TIn, TOut>(                                        \
      const TIn*, const TIn*, TOut*, std::span<const std::int64_t>,           \
      std::span<const std::int64_t>, std::span<const std::int64_t>,           \
      std::span<const std::int64_t>, float, float, std::int64_t);             \
  template void DotOffsets<TIn, TOut>(const TIn*, const TIn*, TOut*,          \
                                      std::span<const std::int64_t>,          \
                                      std::span<const std::int64_t>, float,   \
                                      float);                                 \
  template void ScaledCopyOffsets<TIn, TOut>(                                 \
      const TIn*, float, TOut*, std::span<const std::int64_t>,                \
      std::span<const std::int64_t>, float, float, std::int64_t);

XFLOW_INSTANTIATE_LOWERED(Half, Half)
XFLOW_INSTANTIATE_LOWERED(float, float)
XFLOW_INSTANTIATE_LOWERED(Half, float)
#undef XFLOW_INSTANTIATE_LOWERED

template void GemmOffsets<Half, Half>(
    const Half*, const Half*, Half*, std::span<const std::int64_t>,
    std::span<const std::int64_t>, std::span<const std::int64_t>,
    std::span<const std::int64_t>, std::span<const std::int64_t>,
    std::span<const std::int64_t>, float, float);
template void GemmOffsets<float, float>(
    const float*, const float*, float*, std::span<const std::int64_t>,
    std::span<const std::int64_t>, std::span<const std::int64_t>,
    std::span<const std::int64_t>, std::span<const std::int64_t>,
    std::span<const std::int64_t>, float, float);
template void GemmOffsets<Half, float>(
    const Half*, const Half*, float*, std::span<const std::int64_t>,
    std::span<const std::int64_t>, std::span<const std::int64_t>,
    std::span<const std::int64_t>, std::span<const std::int64_t>,
    std::span<const std::int64_t>, float, float);

}  // namespace xflow
