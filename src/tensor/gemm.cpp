#include "tensor/gemm.hpp"

#include <algorithm>
#include <vector>

#include "common/threadpool.hpp"

namespace xflow {

namespace {
// Cache blocking. The packed A block (kMB x kKB floats) and B block
// (kKB x kNB) together stay within L2; the accumulator tile row fits in L1.
constexpr std::int64_t kMB = 64;
constexpr std::int64_t kNB = 96;
constexpr std::int64_t kKB = 256;

// Register blocking for the micro-kernel: a kMR x kNR accumulator patch
// lives in registers for the whole K-block loop, so the inner loop does
// one B-row load and kMR broadcast-FMAs per K step instead of a
// load+store of the accumulator per multiply like the old scalar kernel.
// 8 x 16 gives eight independent accumulator vectors -- enough to cover
// FMA latency on two issue ports.
constexpr std::int64_t kMR = 8;
constexpr std::int64_t kNR = 16;

static_assert(kMB % kMR == 0 && kNB % kNR == 0,
              "macro tiles must divide evenly into register tiles");

// Per-thread pack/accumulate scratch: each macro-tile task packs its own
// fp32 A/B blocks, so threads never share mutable buffers.
struct Scratch {
  std::vector<float> a_pack, b_pack, acc;
};

Scratch& TlsScratch() {
  thread_local Scratch s;
  if (s.acc.empty()) {
    s.a_pack.resize(static_cast<std::size_t>(kMB * kKB));
    s.b_pack.resize(static_cast<std::size_t>(kKB * kNB));
    s.acc.resize(static_cast<std::size_t>(kMB * kNB));
  }
  return s;
}

// Offset tables for row-major-ish layouts are affine (constant stride);
// detecting that once per call lets the pack and writeback loops use
// direct strided addressing, which vectorizes, instead of a per-element
// table load, which does not. Non-affine tables keep the general path.
struct Affine {
  bool yes = false;
  std::int64_t stride = 0;
};

Affine DetectAffine(std::span<const std::int64_t> t) {
  if (t.size() < 2) return {true, 0};
  const std::int64_t s = t[1] - t[0];
  for (std::size_t i = 2; i < t.size(); ++i) {
    if (t[i] - t[i - 1] != s) return {};
  }
  return {true, s};
}

/// acc[kMR][kNR] += A-strip[kMR][kb] * B-panel[kb][kNR]. The K loop is
/// the only float-accumulation loop, executed in ascending k order, so
/// the per-element operation sequence is fixed regardless of threading.
#if defined(__GNUC__) || defined(__clang__)
// A kNR-wide float vector (one ZMM with AVX-512, lowered to narrower ops
// or scalars on lesser targets). aligned(4): loads need only float
// alignment; may_alias: we view plain float buffers through it.
using Vec
    __attribute__((vector_size(kNR * sizeof(float)), aligned(4), may_alias))
    = float;

// noinline: inlined into the tile loop the kernel competes with the
// packing/driver state for integer registers and GCC ends up reloading
// the eight A-row offsets every K iteration, halving throughput.
__attribute__((noinline)) void MicroTile(const float* a, std::int64_t lda,
                                         const float* b, std::int64_t ldb,
                                         std::int64_t kb, float* acc,
                                         std::int64_t ldc) {
  // Eight accumulator vectors stay in registers for the whole K loop;
  // writing this with explicit Vec locals (rather than float arrays)
  // keeps GCC from spilling them to the stack every iteration.
  Vec c0 = *reinterpret_cast<const Vec*>(acc);
  Vec c1 = *reinterpret_cast<const Vec*>(acc + ldc);
  Vec c2 = *reinterpret_cast<const Vec*>(acc + 2 * ldc);
  Vec c3 = *reinterpret_cast<const Vec*>(acc + 3 * ldc);
  Vec c4 = *reinterpret_cast<const Vec*>(acc + 4 * ldc);
  Vec c5 = *reinterpret_cast<const Vec*>(acc + 5 * ldc);
  Vec c6 = *reinterpret_cast<const Vec*>(acc + 6 * ldc);
  Vec c7 = *reinterpret_cast<const Vec*>(acc + 7 * ldc);
  for (std::int64_t k = 0; k < kb; ++k) {
    const Vec bv = *reinterpret_cast<const Vec*>(b + k * ldb);
    c0 += bv * a[k];
    c1 += bv * a[lda + k];
    c2 += bv * a[2 * lda + k];
    c3 += bv * a[3 * lda + k];
    c4 += bv * a[4 * lda + k];
    c5 += bv * a[5 * lda + k];
    c6 += bv * a[6 * lda + k];
    c7 += bv * a[7 * lda + k];
  }
  *reinterpret_cast<Vec*>(acc) = c0;
  *reinterpret_cast<Vec*>(acc + ldc) = c1;
  *reinterpret_cast<Vec*>(acc + 2 * ldc) = c2;
  *reinterpret_cast<Vec*>(acc + 3 * ldc) = c3;
  *reinterpret_cast<Vec*>(acc + 4 * ldc) = c4;
  *reinterpret_cast<Vec*>(acc + 5 * ldc) = c5;
  *reinterpret_cast<Vec*>(acc + 6 * ldc) = c6;
  *reinterpret_cast<Vec*>(acc + 7 * ldc) = c7;
}
#else
inline void MicroTile(const float* a, std::int64_t lda, const float* b,
                      std::int64_t ldb, std::int64_t kb, float* acc,
                      std::int64_t ldc) {
  float c[kMR][kNR];
  for (std::int64_t r = 0; r < kMR; ++r) {
    for (std::int64_t n = 0; n < kNR; ++n) c[r][n] = acc[r * ldc + n];
  }
  for (std::int64_t k = 0; k < kb; ++k) {
    const float* bk = b + k * ldb;
    for (std::int64_t r = 0; r < kMR; ++r) {
      const float av = a[r * lda + k];
      for (std::int64_t n = 0; n < kNR; ++n) c[r][n] += av * bk[n];
    }
  }
  for (std::int64_t r = 0; r < kMR; ++r) {
    for (std::int64_t n = 0; n < kNR; ++n) acc[r * ldc + n] = c[r][n];
  }
}
#endif

/// Ragged-edge fallback for partial register tiles (mr < kMR or nr < kNR).
/// Same ascending-k accumulation order per output element as MicroTile.
inline void MicroEdge(const float* a, std::int64_t lda, std::int64_t mr,
                      const float* b, std::int64_t ldb, std::int64_t nr,
                      std::int64_t kb, float* acc, std::int64_t ldc) {
  for (std::int64_t r = 0; r < mr; ++r) {
    const float* ar = a + r * lda;
    float* accrow = acc + r * ldc;
    for (std::int64_t k = 0; k < kb; ++k) {
      const float av = ar[k];
      const float* bk = b + k * ldb;
      for (std::int64_t n = 0; n < nr; ++n) accrow[n] += av * bk[n];
    }
  }
}

/// Computes one kMB x kNB output macro-tile at (m0, n0), start to finish:
/// pack, accumulate over all K blocks, write back. Tiles are disjoint in C
/// and use thread-local scratch, so any assignment of tiles to threads
/// yields bitwise-identical results.
template <typename TIn, typename TOut>
void GemmTile(const TIn* a, const TIn* b, TOut* c,
              std::span<const std::int64_t> a_m,
              std::span<const std::int64_t> a_k,
              std::span<const std::int64_t> b_k,
              std::span<const std::int64_t> b_n,
              std::span<const std::int64_t> c_m,
              std::span<const std::int64_t> c_n, float alpha, float beta,
              std::int64_t m0, std::int64_t n0, Affine ak_aff, Affine bn_aff,
              Affine cn_aff) {
  const auto m_total = static_cast<std::int64_t>(a_m.size());
  const auto n_total = static_cast<std::int64_t>(b_n.size());
  const auto k_total = static_cast<std::int64_t>(a_k.size());
  const std::int64_t mb = std::min(kMB, m_total - m0);
  const std::int64_t nb = std::min(kNB, n_total - n0);

  Scratch& s = TlsScratch();
  float* a_pack = s.a_pack.data();
  float* b_pack = s.b_pack.data();
  float* acc = s.acc.data();
  std::fill(acc, acc + mb * nb, 0.0f);

  for (std::int64_t k0 = 0; k0 < k_total; k0 += kKB) {
    const std::int64_t kb = std::min(kKB, k_total - k0);
    // Pack A block as [mb][kb] and B block as [kb][nb], converting to
    // fp32 once so the inner loop is pure fp32 FMA.
    for (std::int64_t m = 0; m < mb; ++m) {
      const std::int64_t am = a_m[static_cast<std::size_t>(m0 + m)];
      float* dst = &a_pack[static_cast<std::size_t>(m * kb)];
      if (ak_aff.yes) {
        const TIn* src = a + am + a_k[static_cast<std::size_t>(k0)];
        const std::int64_t s = ak_aff.stride;
        for (std::int64_t k = 0; k < kb; ++k) dst[k] = float(src[k * s]);
      } else {
        for (std::int64_t k = 0; k < kb; ++k) {
          dst[k] = float(a[am + a_k[static_cast<std::size_t>(k0 + k)]]);
        }
      }
    }
    for (std::int64_t k = 0; k < kb; ++k) {
      const std::int64_t bk = b_k[static_cast<std::size_t>(k0 + k)];
      float* dst = &b_pack[static_cast<std::size_t>(k * nb)];
      if (bn_aff.yes) {
        const TIn* src = b + bk + b_n[static_cast<std::size_t>(n0)];
        const std::int64_t s = bn_aff.stride;
        for (std::int64_t n = 0; n < nb; ++n) dst[n] = float(src[n * s]);
      } else {
        for (std::int64_t n = 0; n < nb; ++n) {
          dst[n] = float(b[bk + b_n[static_cast<std::size_t>(n0 + n)]]);
        }
      }
    }
    // Register-blocked accumulation over the packed blocks.
    std::int64_t m = 0;
    for (; m + kMR <= mb; m += kMR) {
      std::int64_t n = 0;
      for (; n + kNR <= nb; n += kNR) {
        MicroTile(&a_pack[m * kb], kb, &b_pack[n], nb, kb, &acc[m * nb + n],
                  nb);
      }
      if (n < nb) {
        MicroEdge(&a_pack[m * kb], kb, kMR, &b_pack[n], nb, nb - n, kb,
                  &acc[m * nb + n], nb);
      }
    }
    if (m < mb) {
      MicroEdge(&a_pack[m * kb], kb, mb - m, b_pack, nb, nb, kb, &acc[m * nb],
                nb);
    }
  }

  for (std::int64_t m = 0; m < mb; ++m) {
    const std::int64_t cm = c_m[static_cast<std::size_t>(m0 + m)];
    const float* accrow = &acc[static_cast<std::size_t>(m * nb)];
    if (cn_aff.yes && beta == 0.0f) {
      TOut* dst = c + cm + c_n[static_cast<std::size_t>(n0)];
      const std::int64_t s = cn_aff.stride;
      for (std::int64_t n = 0; n < nb; ++n) {
        dst[n * s] = TOut(alpha * accrow[n] + 0.0f);
      }
    } else {
      for (std::int64_t n = 0; n < nb; ++n) {
        TOut& dst = c[cm + c_n[static_cast<std::size_t>(n0 + n)]];
        const float prior = beta == 0.0f ? 0.0f : beta * float(dst);
        dst = TOut(alpha * accrow[n] + prior);
      }
    }
  }
}

}  // namespace

std::int64_t GemmTileCount(std::int64_t m, std::int64_t n) {
  return ((m + kMB - 1) / kMB) * ((n + kNB - 1) / kNB);
}

template <typename TIn, typename TOut>
void GemmOffsets(const TIn* a, const TIn* b, TOut* c,
                 std::span<const std::int64_t> a_m,
                 std::span<const std::int64_t> a_k,
                 std::span<const std::int64_t> b_k,
                 std::span<const std::int64_t> b_n,
                 std::span<const std::int64_t> c_m,
                 std::span<const std::int64_t> c_n, float alpha, float beta) {
  const auto m_total = static_cast<std::int64_t>(a_m.size());
  const auto n_total = static_cast<std::int64_t>(b_n.size());
  if (m_total == 0 || n_total == 0) return;

  const Affine ak_aff = DetectAffine(a_k);
  const Affine bn_aff = DetectAffine(b_n);
  const Affine cn_aff = DetectAffine(c_n);
  const std::int64_t m_tiles = (m_total + kMB - 1) / kMB;
  const std::int64_t n_tiles = (n_total + kNB - 1) / kNB;
  ParallelFor(m_tiles * n_tiles, 1, [&](std::int64_t t) {
    const std::int64_t m0 = (t / n_tiles) * kMB;
    const std::int64_t n0 = (t % n_tiles) * kNB;
    GemmTile(a, b, c, a_m, a_k, b_k, b_n, c_m, c_n, alpha, beta, m0, n0,
             ak_aff, bn_aff, cn_aff);
  });
}

template void GemmOffsets<Half, Half>(
    const Half*, const Half*, Half*, std::span<const std::int64_t>,
    std::span<const std::int64_t>, std::span<const std::int64_t>,
    std::span<const std::int64_t>, std::span<const std::int64_t>,
    std::span<const std::int64_t>, float, float);
template void GemmOffsets<float, float>(
    const float*, const float*, float*, std::span<const std::int64_t>,
    std::span<const std::int64_t>, std::span<const std::int64_t>,
    std::span<const std::int64_t>, std::span<const std::int64_t>,
    std::span<const std::int64_t>, float, float);
template void GemmOffsets<Half, float>(
    const Half*, const Half*, float*, std::span<const std::int64_t>,
    std::span<const std::int64_t>, std::span<const std::int64_t>,
    std::span<const std::int64_t>, std::span<const std::int64_t>,
    std::span<const std::int64_t>, float, float);

}  // namespace xflow
