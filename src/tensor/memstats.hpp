// Allocation accounting for the tensor/workspace memory layer.
//
// Every owning Tensor buffer and every Workspace slab reports its
// allocation here, and the einsum engine reports every offset-table
// build (a cache miss in its per-(spec, shapes) table cache). This is
// the instrumentable hook behind the memory planner's steady-state
// contract: once a layer's activations are bound to a liveness-planned
// arena, a training step must perform *zero* tensor/workspace
// allocations and *zero* einsum-table rebuilds -- tests read a Snapshot
// before and after the step and assert the counters did not move.
// (Other engine-internal scratch -- reduction partials, per-thread tile
// staging -- is not tensor storage and is not counted; it is bounded and
// reused per thread.)
#pragma once

#include <atomic>
#include <cstdint>

namespace xflow::memstats {

/// Monotonic counters; subtract two snapshots to meter a region.
struct Snapshot {
  std::int64_t tensor_allocs = 0;     // owning Tensor buffers created
  std::int64_t tensor_bytes = 0;      // total bytes of those buffers
  std::int64_t workspace_allocs = 0;  // Workspace slab (re)allocations
  std::int64_t workspace_bytes = 0;   // total bytes of those slabs
  std::int64_t einsum_table_builds = 0;  // einsum offset-table cache misses
  std::int64_t einsum_class_builds = 0;  // einsum classification cache misses
  std::int64_t autotune_measures = 0;    // autotune cache fills (cold tunes)
  std::int64_t autotune_hits = 0;        // autotune cache hits (warm lookups)
};

namespace internal {
inline std::atomic<std::int64_t> tensor_allocs{0};
inline std::atomic<std::int64_t> tensor_bytes{0};
inline std::atomic<std::int64_t> workspace_allocs{0};
inline std::atomic<std::int64_t> workspace_bytes{0};
inline std::atomic<std::int64_t> einsum_table_builds{0};
inline std::atomic<std::int64_t> einsum_class_builds{0};
inline std::atomic<std::int64_t> autotune_measures{0};
inline std::atomic<std::int64_t> autotune_hits{0};
}  // namespace internal

inline void RecordTensorAlloc(std::int64_t bytes) {
  internal::tensor_allocs.fetch_add(1, std::memory_order_relaxed);
  internal::tensor_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

inline void RecordWorkspaceAlloc(std::int64_t bytes) {
  internal::workspace_allocs.fetch_add(1, std::memory_order_relaxed);
  internal::workspace_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

inline void RecordEinsumTableBuild() {
  internal::einsum_table_builds.fetch_add(1, std::memory_order_relaxed);
}

inline void RecordEinsumClassBuild() {
  internal::einsum_class_builds.fetch_add(1, std::memory_order_relaxed);
}

inline void RecordAutotuneMeasure() {
  internal::autotune_measures.fetch_add(1, std::memory_order_relaxed);
}

inline void RecordAutotuneHit() {
  internal::autotune_hits.fetch_add(1, std::memory_order_relaxed);
}

inline Snapshot Read() {
  Snapshot s;
  s.tensor_allocs = internal::tensor_allocs.load(std::memory_order_relaxed);
  s.tensor_bytes = internal::tensor_bytes.load(std::memory_order_relaxed);
  s.workspace_allocs =
      internal::workspace_allocs.load(std::memory_order_relaxed);
  s.workspace_bytes =
      internal::workspace_bytes.load(std::memory_order_relaxed);
  s.einsum_table_builds =
      internal::einsum_table_builds.load(std::memory_order_relaxed);
  s.einsum_class_builds =
      internal::einsum_class_builds.load(std::memory_order_relaxed);
  s.autotune_measures =
      internal::autotune_measures.load(std::memory_order_relaxed);
  s.autotune_hits = internal::autotune_hits.load(std::memory_order_relaxed);
  return s;
}

}  // namespace xflow::memstats
