// Strided, named-dimension tensors with fp16/fp32 element types.
//
// A Tensor either *owns* its storage (a 64-byte-aligned buffer, the
// default) or is a non-owning *view* into caller-managed memory -- a
// Workspace arena slot (FromSpan) or a contiguous slice of another
// tensor (SliceViewDim). Copying an owning tensor copies the bytes;
// copying a view aliases the same memory. Owning allocations report to
// memstats so tests can assert a planned steady-state step never touches
// the allocator.
//
// Bulk initialization (zero-fill, Random, Full, deep copies) runs in
// fixed-size chunks on the thread pool: values are a pure function of the
// element index, so results are bitwise identical at every thread count,
// and large buffers get their first touch spread across threads
// (NUMA-friendly page placement).
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <new>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/half.hpp"
#include "common/rng.hpp"
#include "common/threadpool.hpp"
#include "tensor/memstats.hpp"
#include "tensor/shape.hpp"

namespace xflow {

namespace tensor_detail {
/// Runs fn(begin, end) over fixed 64K-element chunks on the pool (inline
/// when everything fits in one chunk). Fixed chunking keeps first-touch
/// placement and values independent of the thread count.
template <typename Fn>
void ForEachChunk(std::int64_t n, Fn&& fn) {
  constexpr std::int64_t kChunk = 1 << 16;
  if (n <= 0) return;
  if (n <= kChunk) {
    fn(std::int64_t{0}, n);
    return;
  }
  const std::int64_t chunks = (n + kChunk - 1) / kChunk;
  ParallelFor(chunks, 1, [&](std::int64_t c) {
    fn(c * kChunk, std::min(n, (c + 1) * kChunk));
  });
}
}  // namespace tensor_detail

/// A dense tensor whose memory order equals its shape's dimension order
/// (row-major over that order). Changing the layout = Permuted() copy.
template <typename T>
class Tensor {
  static_assert(std::is_trivially_copyable_v<T>,
                "Tensor elements must be trivially copyable");

 public:
  /// Owning buffers are cache-line aligned (and thus SIMD-aligned).
  static constexpr std::size_t kAlignment = 64;

  Tensor() = default;
  explicit Tensor(Shape shape) : shape_(std::move(shape)) {
    AllocateOwned();
    ZeroFill();
  }
  Tensor(std::string_view names, std::initializer_list<std::int64_t> extents)
      : Tensor(Shape(names, extents)) {}

  Tensor(const Tensor& other) : shape_(other.shape_) {
    if (other.data_ == nullptr) return;
    if (!other.owns_) {  // views alias, they do not copy
      data_ = other.data_;
      return;
    }
    AllocateOwned();
    CopyElements(other.data_, data_, size());
  }
  Tensor& operator=(const Tensor& other) {
    if (this != &other) *this = Tensor(other);
    return *this;
  }
  Tensor(Tensor&& other) noexcept
      : shape_(std::move(other.shape_)), data_(other.data_),
        owns_(other.owns_) {
    other.data_ = nullptr;
    other.owns_ = false;
  }
  Tensor& operator=(Tensor&& other) noexcept {
    if (this != &other) {
      Release();
      shape_ = std::move(other.shape_);
      data_ = other.data_;
      owns_ = other.owns_;
      other.data_ = nullptr;
      other.owns_ = false;
    }
    return *this;
  }
  ~Tensor() { Release(); }

  /// Uniform values in [-1, 1), deterministic in (seed) and independent of
  /// the thread count (each element is a pure function of its index).
  static Tensor Random(Shape shape, std::uint64_t seed) {
    Tensor t = Uninitialized(std::move(shape));
    const Philox4x32 gen(seed);
    T* data = t.data_;
    ForEachChunk(t.size(), [data, &gen](std::int64_t begin, std::int64_t end) {
      for (std::int64_t i = begin; i < end; ++i) {
        data[i] =
            T(gen.UniformAt(static_cast<std::uint64_t>(i)) * 2.0f - 1.0f);
      }
    });
    return t;
  }

  static Tensor Full(Shape shape, float value) {
    Tensor t = Uninitialized(std::move(shape));
    T* data = t.data_;
    const T v = T(value);
    ForEachChunk(t.size(), [data, v](std::int64_t begin, std::int64_t end) {
      for (std::int64_t i = begin; i < end; ++i) data[i] = v;
    });
    return t;
  }

  /// Non-owning view over caller-managed storage (e.g. a Workspace slab).
  /// `data` must hold shape.num_elements() elements and outlive every view
  /// of it; copies of the view alias the same memory.
  static Tensor FromSpan(Shape shape, T* data) {
    Tensor t;
    t.shape_ = std::move(shape);
    t.data_ = data;
    t.owns_ = false;
    return t;
  }

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] std::string dim_order() const { return shape_.names(); }
  [[nodiscard]] std::int64_t extent(char d) const { return shape_.extent(d); }
  [[nodiscard]] std::int64_t stride(char d) const { return shape_.stride(d); }
  [[nodiscard]] std::int64_t size() const { return shape_.num_elements(); }
  /// False when this tensor aliases storage it does not own.
  [[nodiscard]] bool owns_data() const { return owns_ || data_ == nullptr; }

  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] std::span<T> values() {
    return {data_, data_ == nullptr ? 0 : static_cast<std::size_t>(size())};
  }
  [[nodiscard]] std::span<const T> values() const {
    return {data_, data_ == nullptr ? 0 : static_cast<std::size_t>(size())};
  }

  /// In-place (re)shape that reuses the current storage -- owning buffer
  /// or bound view -- whenever the element count already matches (contents
  /// are preserved, kernels overwrite them anyway). Otherwise allocates a
  /// fresh zeroed owning buffer; a view never matches a different element
  /// count, because planned storage is fixed, so that case throws.
  void EnsureShape(const Shape& shape) {
    if (data_ != nullptr && shape_.num_elements() == shape.num_elements()) {
      shape_ = shape;
      return;
    }
    require(owns_ || data_ == nullptr,
            "tensor view cannot be resized: its planned storage is fixed");
    *this = Tensor(shape);
  }

  /// Linear offset of a (dim, index) assignment. Dims not present are ignored
  /// so callers can pass a superset (handy for broadcast-style kernels).
  [[nodiscard]] std::int64_t OffsetOf(
      std::span<const std::pair<char, std::int64_t>> coords) const {
    std::int64_t off = 0;
    for (const auto& [d, i] : coords) {
      if (shape_.has(d)) off += i * shape_.stride(d);
    }
    return off;
  }

  /// Element access by named coordinates (test/reference path; slow).
  [[nodiscard]] T& at(
      std::initializer_list<std::pair<char, std::int64_t>> coords) {
    return data_[static_cast<std::size_t>(
        OffsetOf({coords.begin(), coords.size()}))];
  }
  [[nodiscard]] const T& at(
      std::initializer_list<std::pair<char, std::int64_t>> coords) const {
    return data_[static_cast<std::size_t>(
        OffsetOf({coords.begin(), coords.size()}))];
  }

  /// Copy with dimensions rearranged to `new_order` (a layout change).
  [[nodiscard]] Tensor Permuted(std::string_view new_order) const {
    Tensor out(shape_.Permuted(new_order));
    const auto& dims = shape_.dims();
    std::vector<std::int64_t> out_strides(dims.size());
    for (std::size_t d = 0; d < dims.size(); ++d) {
      out_strides[d] = out.shape_.stride(dims[d].name);
    }
    const auto in_strides = shape_.strides();
    ForEachIndex(shape_, [&](std::span<const std::int64_t> idx) {
      std::int64_t in_off = 0, out_off = 0;
      for (std::size_t d = 0; d < idx.size(); ++d) {
        in_off += idx[d] * in_strides[d];
        out_off += idx[d] * out_strides[d];
      }
      out.data_[static_cast<std::size_t>(out_off)] =
          data_[static_cast<std::size_t>(in_off)];
    });
    return out;
  }

  /// Same data, one dimension renamed (no copy of element order; the
  /// memory layout is untouched). Used where the paper reuses a tensor
  /// under another index name, e.g. keys indexed by k instead of j.
  /// On a view this is an aliasing relabel; on an owning tensor it copies.
  [[nodiscard]] Tensor RenamedDim(char from, char to) const {
    std::vector<DimExt> dims;
    for (const auto& de : shape_.dims()) {
      dims.push_back({de.name == from ? to : de.name, de.extent});
    }
    Tensor out = *this;
    out.shape_ = Shape(std::move(dims));
    return out;
  }

  /// Copy of the sub-tensor where dim `d` is restricted to
  /// [start, start+count). Used e.g. to split stacked Q/K/V weights.
  [[nodiscard]] Tensor SliceDim(char d, std::int64_t start,
                                std::int64_t count) const {
    require(start >= 0 && count > 0 && start + count <= extent(d),
            "slice out of range");
    std::vector<DimExt> dims;
    for (const auto& de : shape_.dims()) {
      dims.push_back({de.name, de.name == d ? count : de.extent});
    }
    Tensor out{Shape(std::move(dims))};
    const auto& dst_dims = out.shape_.dims();
    std::vector<std::int64_t> src_strides(dst_dims.size());
    for (std::size_t k = 0; k < dst_dims.size(); ++k) {
      src_strides[k] = shape_.stride(dst_dims[k].name);
    }
    const std::int64_t base = start * shape_.stride(d);
    const auto dst_strides = out.shape_.strides();
    ForEachIndex(out.shape_, [&](std::span<const std::int64_t> idx) {
      std::int64_t src = base, dst = 0;
      for (std::size_t k = 0; k < idx.size(); ++k) {
        src += idx[k] * src_strides[k];
        dst += idx[k] * dst_strides[k];
      }
      out.data_[static_cast<std::size_t>(dst)] =
          data_[static_cast<std::size_t>(src)];
    });
    return out;
  }

  /// Non-owning view of the range where the *outermost* dimension `d` is
  /// restricted to [start, start+count) -- such a slice is contiguous, so
  /// no copy is needed (the zero-cost split of a stacked Q/K/V block).
  /// The view aliases this tensor's storage and must not outlive it;
  /// writing through a view of a const tensor is the caller's bug.
  [[nodiscard]] Tensor SliceViewDim(char d, std::int64_t start,
                                    std::int64_t count) const {
    require(shape_.rank() > 0 && shape_.dims().front().name == d,
            "SliceViewDim requires the outermost dimension");
    require(start >= 0 && count > 0 && start + count <= extent(d),
            "slice out of range");
    std::vector<DimExt> dims;
    for (const auto& de : shape_.dims()) {
      dims.push_back({de.name, de.name == d ? count : de.extent});
    }
    return FromSpan(Shape(std::move(dims)),
                    const_cast<T*>(data_) + start * shape_.stride(d));
  }

  /// Element-type conversion (e.g. fp16 master copy of fp32 weights).
  template <typename U>
  [[nodiscard]] Tensor<U> Cast() const {
    Tensor<U> out(shape_);
    for (std::int64_t i = 0; i < size(); ++i) {
      out.data()[i] = U(float(data_[static_cast<std::size_t>(i)]));
    }
    return out;
  }

 private:
  static Tensor Uninitialized(Shape shape) {
    Tensor t;
    t.shape_ = std::move(shape);
    t.AllocateOwned();
    return t;
  }

  void AllocateOwned() {
    const std::size_t bytes =
        static_cast<std::size_t>(shape_.num_elements()) * sizeof(T);
    data_ = static_cast<T*>(
        ::operator new(bytes, std::align_val_t{kAlignment}));
    owns_ = true;
    memstats::RecordTensorAlloc(static_cast<std::int64_t>(bytes));
  }

  void Release() {
    if (owns_ && data_ != nullptr) {
      ::operator delete(data_, std::align_val_t{kAlignment});
    }
    data_ = nullptr;
    owns_ = false;
  }

  void ZeroFill() {
    // memset through void*: T is trivially copyable (asserted above) and
    // all-bits-zero is 0.0 for float and Half alike, matching the old
    // std::vector value-initialization.
    T* data = data_;
    ForEachChunk(size(), [data](std::int64_t begin, std::int64_t end) {
      std::memset(static_cast<void*>(data + begin), 0,
                  static_cast<std::size_t>(end - begin) * sizeof(T));
    });
  }

  static void CopyElements(const T* src, T* dst, std::int64_t n) {
    ForEachChunk(n, [src, dst](std::int64_t begin, std::int64_t end) {
      std::memcpy(static_cast<void*>(dst + begin), src + begin,
                  static_cast<std::size_t>(end - begin) * sizeof(T));
    });
  }

  template <typename Fn>
  static void ForEachChunk(std::int64_t n, Fn&& fn) {
    tensor_detail::ForEachChunk(n, std::forward<Fn>(fn));
  }

  Shape shape_;
  T* data_ = nullptr;
  bool owns_ = false;
};

/// Copies values between tensors of identical shape and memory order; a
/// no-op when both alias the same storage. Chunked on the pool like every
/// other bulk initializer (arena first-touch follows the kernel threads).
template <typename T>
void CopyValuesInto(const Tensor<T>& src, Tensor<T>& dst) {
  require(src.shape() == dst.shape(),
          "CopyValuesInto requires identical shapes");
  if (src.data() == dst.data()) return;
  const T* s = src.data();
  T* d = dst.data();
  tensor_detail::ForEachChunk(
      src.size(), [s, d](std::int64_t begin, std::int64_t end) {
        std::memcpy(static_cast<void*>(d + begin), s + begin,
                    static_cast<std::size_t>(end - begin) * sizeof(T));
      });
}

/// Concatenation of tensors along dim `d` (all other extents must match).
/// Models the paper's algebraic stacking, e.g. [dQ~ dK~ dV~].
template <typename T>
Tensor<T> ConcatDim(std::initializer_list<const Tensor<T>*> parts, char d) {
  require(parts.size() > 0, "nothing to concatenate");
  const Tensor<T>& first = **parts.begin();
  std::int64_t total = 0;
  for (const Tensor<T>* p : parts) total += p->extent(d);
  std::vector<DimExt> dims;
  for (const auto& de : first.shape().dims()) {
    dims.push_back({de.name, de.name == d ? total : de.extent});
  }
  Tensor<T> out{Shape(std::move(dims))};
  std::int64_t offset = 0;
  for (const Tensor<T>* part : parts) {
    const auto& shape = part->shape();
    const auto src_strides = shape.strides();
    std::vector<std::int64_t> dst_strides(shape.dims().size());
    for (std::size_t k = 0; k < shape.dims().size(); ++k) {
      dst_strides[k] = out.shape().stride(shape.dims()[k].name);
    }
    const std::int64_t base = offset * out.shape().stride(d);
    ForEachIndex(shape, [&](std::span<const std::int64_t> idx) {
      std::int64_t src = 0, dst = base;
      for (std::size_t k = 0; k < idx.size(); ++k) {
        src += idx[k] * src_strides[k];
        dst += idx[k] * dst_strides[k];
      }
      out.data()[dst] = part->data()[src];
    });
    offset += part->extent(d);
  }
  return out;
}

/// Largest absolute elementwise difference; tensors may differ in layout but
/// must have the same dimensions.
template <typename A, typename B>
double MaxAbsDiff(const Tensor<A>& a, const Tensor<B>& b) {
  require(a.size() == b.size(), "tensor sizes must match");
  const auto names = a.shape().names();
  double worst = 0;
  const auto a_strides = a.shape().strides();
  std::vector<std::int64_t> b_strides(names.size());
  for (std::size_t d = 0; d < names.size(); ++d) {
    b_strides[d] = b.shape().stride(names[d]);
  }
  ForEachIndex(a.shape(), [&](std::span<const std::int64_t> idx) {
    std::int64_t ao = 0, bo = 0;
    for (std::size_t d = 0; d < idx.size(); ++d) {
      ao += idx[d] * a_strides[d];
      bo += idx[d] * b_strides[d];
    }
    const double diff = std::fabs(double(float(a.data()[ao])) -
                                  double(float(b.data()[bo])));
    worst = std::max(worst, diff);
  });
  return worst;
}

using TensorF = Tensor<float>;
using TensorH = Tensor<Half>;

}  // namespace xflow
