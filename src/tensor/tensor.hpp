// Strided, named-dimension tensors with fp16/fp32 element types.
#pragma once

#include <cmath>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/half.hpp"
#include "common/rng.hpp"
#include "tensor/shape.hpp"

namespace xflow {

/// A dense tensor whose memory order equals its shape's dimension order
/// (row-major over that order). Changing the layout = Permuted() copy.
template <typename T>
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)),
        data_(static_cast<std::size_t>(shape_.num_elements())) {}
  Tensor(std::string_view names, std::initializer_list<std::int64_t> extents)
      : Tensor(Shape(names, extents)) {}

  /// Uniform values in [-1, 1), deterministic in (seed).
  static Tensor Random(Shape shape, std::uint64_t seed) {
    Tensor t(std::move(shape));
    Philox4x32 gen(seed);
    for (std::size_t i = 0; i < t.data_.size(); ++i) {
      t.data_[i] = T(gen.UniformAt(i) * 2.0f - 1.0f);
    }
    return t;
  }

  static Tensor Full(Shape shape, float value) {
    Tensor t(std::move(shape));
    for (auto& v : t.data_) v = T(value);
    return t;
  }

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] std::string dim_order() const { return shape_.names(); }
  [[nodiscard]] std::int64_t extent(char d) const { return shape_.extent(d); }
  [[nodiscard]] std::int64_t stride(char d) const { return shape_.stride(d); }
  [[nodiscard]] std::int64_t size() const { return shape_.num_elements(); }

  [[nodiscard]] T* data() { return data_.data(); }
  [[nodiscard]] const T* data() const { return data_.data(); }
  [[nodiscard]] std::span<T> values() { return data_; }
  [[nodiscard]] std::span<const T> values() const { return data_; }

  /// Linear offset of a (dim, index) assignment. Dims not present are ignored
  /// so callers can pass a superset (handy for broadcast-style kernels).
  [[nodiscard]] std::int64_t OffsetOf(
      std::span<const std::pair<char, std::int64_t>> coords) const {
    std::int64_t off = 0;
    for (const auto& [d, i] : coords) {
      if (shape_.has(d)) off += i * shape_.stride(d);
    }
    return off;
  }

  /// Element access by named coordinates (test/reference path; slow).
  [[nodiscard]] T& at(
      std::initializer_list<std::pair<char, std::int64_t>> coords) {
    return data_[static_cast<std::size_t>(
        OffsetOf({coords.begin(), coords.size()}))];
  }
  [[nodiscard]] const T& at(
      std::initializer_list<std::pair<char, std::int64_t>> coords) const {
    return data_[static_cast<std::size_t>(
        OffsetOf({coords.begin(), coords.size()}))];
  }

  /// Copy with dimensions rearranged to `new_order` (a layout change).
  [[nodiscard]] Tensor Permuted(std::string_view new_order) const {
    Tensor out(shape_.Permuted(new_order));
    const auto& dims = shape_.dims();
    std::vector<std::int64_t> out_strides(dims.size());
    for (std::size_t d = 0; d < dims.size(); ++d) {
      out_strides[d] = out.shape_.stride(dims[d].name);
    }
    const auto in_strides = shape_.strides();
    ForEachIndex(shape_, [&](std::span<const std::int64_t> idx) {
      std::int64_t in_off = 0, out_off = 0;
      for (std::size_t d = 0; d < idx.size(); ++d) {
        in_off += idx[d] * in_strides[d];
        out_off += idx[d] * out_strides[d];
      }
      out.data_[static_cast<std::size_t>(out_off)] =
          data_[static_cast<std::size_t>(in_off)];
    });
    return out;
  }

  /// Same data, one dimension renamed (no copy of element order; the
  /// memory layout is untouched). Used where the paper reuses a tensor
  /// under another index name, e.g. keys indexed by k instead of j.
  [[nodiscard]] Tensor RenamedDim(char from, char to) const {
    std::vector<DimExt> dims;
    for (const auto& de : shape_.dims()) {
      dims.push_back({de.name == from ? to : de.name, de.extent});
    }
    Tensor out = *this;
    out.shape_ = Shape(std::move(dims));
    return out;
  }

  /// Copy of the sub-tensor where dim `d` is restricted to
  /// [start, start+count). Used e.g. to split stacked Q/K/V weights.
  [[nodiscard]] Tensor SliceDim(char d, std::int64_t start,
                                std::int64_t count) const {
    require(start >= 0 && count > 0 && start + count <= extent(d),
            "slice out of range");
    std::vector<DimExt> dims;
    for (const auto& de : shape_.dims()) {
      dims.push_back({de.name, de.name == d ? count : de.extent});
    }
    Tensor out{Shape(std::move(dims))};
    const auto& dst_dims = out.shape_.dims();
    std::vector<std::int64_t> src_strides(dst_dims.size());
    for (std::size_t k = 0; k < dst_dims.size(); ++k) {
      src_strides[k] = shape_.stride(dst_dims[k].name);
    }
    const std::int64_t base = start * shape_.stride(d);
    const auto dst_strides = out.shape_.strides();
    ForEachIndex(out.shape_, [&](std::span<const std::int64_t> idx) {
      std::int64_t src = base, dst = 0;
      for (std::size_t k = 0; k < idx.size(); ++k) {
        src += idx[k] * src_strides[k];
        dst += idx[k] * dst_strides[k];
      }
      out.data_[static_cast<std::size_t>(dst)] =
          data_[static_cast<std::size_t>(src)];
    });
    return out;
  }

  /// Element-type conversion (e.g. fp16 master copy of fp32 weights).
  template <typename U>
  [[nodiscard]] Tensor<U> Cast() const {
    Tensor<U> out(shape_);
    for (std::int64_t i = 0; i < size(); ++i) {
      out.data()[i] = U(float(data_[static_cast<std::size_t>(i)]));
    }
    return out;
  }

 private:
  Shape shape_;
  std::vector<T> data_;
};

/// Concatenation of tensors along dim `d` (all other extents must match).
/// Models the paper's algebraic stacking, e.g. [dQ~ dK~ dV~].
template <typename T>
Tensor<T> ConcatDim(std::initializer_list<const Tensor<T>*> parts, char d) {
  require(parts.size() > 0, "nothing to concatenate");
  const Tensor<T>& first = **parts.begin();
  std::int64_t total = 0;
  for (const Tensor<T>* p : parts) total += p->extent(d);
  std::vector<DimExt> dims;
  for (const auto& de : first.shape().dims()) {
    dims.push_back({de.name, de.name == d ? total : de.extent});
  }
  Tensor<T> out{Shape(std::move(dims))};
  std::int64_t offset = 0;
  for (const Tensor<T>* part : parts) {
    const auto& shape = part->shape();
    const auto src_strides = shape.strides();
    std::vector<std::int64_t> dst_strides(shape.dims().size());
    for (std::size_t k = 0; k < shape.dims().size(); ++k) {
      dst_strides[k] = out.shape().stride(shape.dims()[k].name);
    }
    const std::int64_t base = offset * out.shape().stride(d);
    ForEachIndex(shape, [&](std::span<const std::int64_t> idx) {
      std::int64_t src = 0, dst = base;
      for (std::size_t k = 0; k < idx.size(); ++k) {
        src += idx[k] * src_strides[k];
        dst += idx[k] * dst_strides[k];
      }
      out.data()[dst] = part->data()[src];
    });
    offset += part->extent(d);
  }
  return out;
}

/// Largest absolute elementwise difference; tensors may differ in layout but
/// must have the same dimensions.
template <typename A, typename B>
double MaxAbsDiff(const Tensor<A>& a, const Tensor<B>& b) {
  require(a.size() == b.size(), "tensor sizes must match");
  const auto names = a.shape().names();
  double worst = 0;
  const auto a_strides = a.shape().strides();
  std::vector<std::int64_t> b_strides(names.size());
  for (std::size_t d = 0; d < names.size(); ++d) {
    b_strides[d] = b.shape().stride(names[d]);
  }
  ForEachIndex(a.shape(), [&](std::span<const std::int64_t> idx) {
    std::int64_t ao = 0, bo = 0;
    for (std::size_t d = 0; d < idx.size(); ++d) {
      ao += idx[d] * a_strides[d];
      bo += idx[d] * b_strides[d];
    }
    const double diff = std::fabs(double(float(a.data()[ao])) -
                                  double(float(b.data()[bo])));
    worst = std::max(worst, diff);
  });
  return worst;
}

using TensorF = Tensor<float>;
using TensorH = Tensor<Half>;

}  // namespace xflow
