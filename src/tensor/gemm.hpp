// Blocked CPU GEMM with arbitrary per-dimension strides.
//
// This is the compute substrate standing in for cuBLAS: inputs may be fp16
// (Half) or fp32, and accumulation is always fp32, matching the paper's
// mixed-precision setup. Arbitrary layouts are supported through offset
// tables: the caller provides, for each of M/N/K, the memory offset of every
// index along that axis, which uniformly encodes any transposition or
// multi-dimensional flattening.
//
// Execution is parallel over the M x N macro-tile grid using the global
// ThreadPool (see common/threadpool.hpp; XFLOW_THREADS controls the count).
// Each output tile is computed start-to-finish by one thread with
// thread-local pack buffers and a fixed ascending-k accumulation order, so
// results are bitwise identical at every thread count.
#pragma once

#include <cstdint>
#include <span>

#include "common/half.hpp"

namespace xflow {

/// Number of independent macro-tiles GemmOffsets runs for an M x N output
/// -- the unit of intra-GEMM parallelism. Callers with many independent
/// GEMMs (batched einsum) use this to decide which level to parallelize.
std::int64_t GemmTileCount(std::int64_t m, std::int64_t n);

/// C[c_m[m] + c_n[n]] = alpha * sum_k A[a_m[m] + a_k[k]] * B[b_k[k] + b_n[n]]
///                      + beta * C[...]
/// M, N, K are the table sizes. Accumulation is fp32.
template <typename TIn, typename TOut>
void GemmOffsets(const TIn* a, const TIn* b, TOut* c,
                 std::span<const std::int64_t> a_m,
                 std::span<const std::int64_t> a_k,
                 std::span<const std::int64_t> b_k,
                 std::span<const std::int64_t> b_n,
                 std::span<const std::int64_t> c_m,
                 std::span<const std::int64_t> c_n, float alpha, float beta);

extern template void GemmOffsets<Half, Half>(
    const Half*, const Half*, Half*, std::span<const std::int64_t>,
    std::span<const std::int64_t>, std::span<const std::int64_t>,
    std::span<const std::int64_t>, std::span<const std::int64_t>,
    std::span<const std::int64_t>, float, float);
extern template void GemmOffsets<float, float>(
    const float*, const float*, float*, std::span<const std::int64_t>,
    std::span<const std::int64_t>, std::span<const std::int64_t>,
    std::span<const std::int64_t>, std::span<const std::int64_t>,
    std::span<const std::int64_t>, float, float);
extern template void GemmOffsets<Half, float>(
    const Half*, const Half*, float*, std::span<const std::int64_t>,
    std::span<const std::int64_t>, std::span<const std::int64_t>,
    std::span<const std::int64_t>, std::span<const std::int64_t>,
    std::span<const std::int64_t>, float, float);

}  // namespace xflow
