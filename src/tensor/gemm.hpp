// Blocked CPU GEMM with arbitrary per-dimension strides.
//
// This is the compute substrate standing in for cuBLAS: inputs may be fp16
// (Half) or fp32, and accumulation is always fp32, matching the paper's
// mixed-precision setup. Arbitrary layouts are supported through offset
// tables: the caller provides, for each of M/N/K, the memory offset of every
// index along that axis, which uniformly encodes any transposition or
// multi-dimensional flattening.
//
// Execution is parallel over the M x N macro-tile grid using the global
// ThreadPool (see common/threadpool.hpp; XFLOW_THREADS controls the count).
// Each output tile is computed start-to-finish by one thread with
// thread-local pack buffers and a fixed ascending-k accumulation order, so
// results are bitwise identical at every thread count.
#pragma once

#include <cstdint>
#include <span>

#include "common/half.hpp"

namespace xflow {

/// Number of independent macro-tiles GemmOffsets runs for an M x N output
/// -- the unit of intra-GEMM parallelism. Callers with many independent
/// GEMMs (batched einsum) use this to decide which level to parallelize.
std::int64_t GemmTileCount(std::int64_t m, std::int64_t n);

/// C[c_m[m] + c_n[n]] = alpha * sum_k A[a_m[m] + a_k[k]] * B[b_k[k] + b_n[n]]
///                      + beta * C[...]
/// M, N, K are the table sizes. Accumulation is fp32.
template <typename TIn, typename TOut>
void GemmOffsets(const TIn* a, const TIn* b, TOut* c,
                 std::span<const std::int64_t> a_m,
                 std::span<const std::int64_t> a_k,
                 std::span<const std::int64_t> b_k,
                 std::span<const std::int64_t> b_n,
                 std::span<const std::int64_t> c_m,
                 std::span<const std::int64_t> c_n, float alpha, float beta);

// ---------------------------------------------------------------------
// Specialized kernels for the degenerate contraction classes (see
// tensor/einsum_class.hpp). None of them pay the macro-tile/pack
// pipeline, and every one performs, per output element, exactly the
// generic path's float-op sequence -- fp32 convert, ascending-k
// `acc += a * b` accumulation from 0.0f, `TOut(alpha * acc + prior)`
// writeback -- so results are bitwise identical to GemmOffsets at every
// thread count and for every row grain.

/// Bit-exact branch-free twin of Half::FromFloat (verified exhaustively
/// over all 2^32 float patterns by test_einsum). The class converter's
/// data-dependent branches block if-conversion, so writeback loops using
/// it cannot vectorize; this formulation is straight-line integer
/// arithmetic plus one float add (which performs the subnormal rounding
/// in hardware, round-to-nearest-even like the software path). The
/// specialized kernels below store Half results through it.
std::uint16_t LoweredHalfBits(float f);

/// y[y_m[r]] = alpha * sum_k A[a_m[r] + a_k[k]] * x[x_k[k]] + beta * y[...]
/// Matrix-vector product (the n == 1 class; callers with m == 1 swap the
/// operand roles). Rows are partitioned over the pool in `row_grain`-row
/// chunks; each row is one serial ascending-k chain, so the grain is a
/// pure scheduling knob.
template <typename TIn, typename TOut>
void GemvOffsets(const TIn* a, const TIn* x, TOut* y,
                 std::span<const std::int64_t> a_m,
                 std::span<const std::int64_t> a_k,
                 std::span<const std::int64_t> x_k,
                 std::span<const std::int64_t> y_m, float alpha, float beta,
                 std::int64_t row_grain);

/// C[c_m[m] + c_n[n]] = alpha * A[a_m[m]] * B[b_n[n]] + beta * C[...]
/// Outer product (the k == 1 class): one multiply-accumulate per output
/// element, no packing. The caller folds the single k offset into the
/// operand base pointers. Rows (m) are partitioned in `row_grain` chunks.
template <typename TIn, typename TOut>
void GerOffsets(const TIn* a, const TIn* b, TOut* c,
                std::span<const std::int64_t> a_m,
                std::span<const std::int64_t> b_n,
                std::span<const std::int64_t> c_m,
                std::span<const std::int64_t> c_n, float alpha, float beta,
                std::int64_t row_grain);

/// c[0] = alpha * sum_k a[a_k[k]] * b[b_k[k]] + beta * c[0]
/// Pure reduction (m == n == 1): one serial ascending-k dot product --
/// the single output element must be one accumulation chain, so there is
/// nothing to parallelize below the batch level.
template <typename TIn, typename TOut>
void DotOffsets(const TIn* a, const TIn* b, TOut* c,
                std::span<const std::int64_t> a_k,
                std::span<const std::int64_t> b_k, float alpha, float beta);

/// out[out_t[r]] = alpha * (vec[vec_t[r]] * scalar) + beta * out[...]
/// The k == 1, single-free-dim "view" class: a transpose-free scaled
/// copy of the varying operand, the other operand reduced to one fp32
/// scalar by the caller. No contraction arithmetic at all.
template <typename TIn, typename TOut>
void ScaledCopyOffsets(const TIn* vec, float scalar, TOut* out,
                       std::span<const std::int64_t> vec_t,
                       std::span<const std::int64_t> out_t, float alpha,
                       float beta, std::int64_t row_grain);

extern template void GemmOffsets<Half, Half>(
    const Half*, const Half*, Half*, std::span<const std::int64_t>,
    std::span<const std::int64_t>, std::span<const std::int64_t>,
    std::span<const std::int64_t>, std::span<const std::int64_t>,
    std::span<const std::int64_t>, float, float);
extern template void GemmOffsets<float, float>(
    const float*, const float*, float*, std::span<const std::int64_t>,
    std::span<const std::int64_t>, std::span<const std::int64_t>,
    std::span<const std::int64_t>, std::span<const std::int64_t>,
    std::span<const std::int64_t>, float, float);
extern template void GemmOffsets<Half, float>(
    const Half*, const Half*, float*, std::span<const std::int64_t>,
    std::span<const std::int64_t>, std::span<const std::int64_t>,
    std::span<const std::int64_t>, std::span<const std::int64_t>,
    std::span<const std::int64_t>, float, float);

}  // namespace xflow
