#include "tensor/workspace.hpp"

#include <algorithm>
#include <cstring>
#include <new>

#include "common/threadpool.hpp"
#include "tensor/memstats.hpp"

namespace xflow {

Workspace::~Workspace() { Release(); }

Workspace::Workspace(Workspace&& other) noexcept
    : slab_(other.slab_), capacity_(other.capacity_), cursor_(other.cursor_) {
  other.slab_ = nullptr;
  other.capacity_ = 0;
  other.cursor_ = 0;
}

Workspace& Workspace::operator=(Workspace&& other) noexcept {
  if (this != &other) {
    Release();
    slab_ = other.slab_;
    capacity_ = other.capacity_;
    cursor_ = other.cursor_;
    other.slab_ = nullptr;
    other.capacity_ = 0;
    other.cursor_ = 0;
  }
  return *this;
}

void Workspace::Release() {
  if (slab_ != nullptr) {
    ::operator delete(slab_, std::align_val_t{kAlignment});
  }
  slab_ = nullptr;
  capacity_ = 0;
  cursor_ = 0;
}

void Workspace::Reserve(std::size_t bytes) {
  bytes = AlignUp(bytes);
  if (bytes <= capacity_) return;
  const std::size_t cursor = cursor_;
  Release();
  slab_ = static_cast<std::byte*>(
      ::operator new(bytes, std::align_val_t{kAlignment}));
  capacity_ = bytes;
  cursor_ = cursor;
  memstats::RecordWorkspaceAlloc(static_cast<std::int64_t>(bytes));
  // Zero with a parallel first touch: page placement follows the threads
  // that will later run the kernels, and planned-vs-owning comparisons
  // start from a deterministic state.
  constexpr std::size_t kChunk = std::size_t{1} << 20;
  std::byte* slab = slab_;
  if (bytes <= kChunk) {
    std::memset(slab, 0, bytes);
    return;
  }
  const auto chunks =
      static_cast<std::int64_t>((bytes + kChunk - 1) / kChunk);
  ParallelFor(chunks, 1, [slab, bytes](std::int64_t c) {
    const std::size_t begin = static_cast<std::size_t>(c) * kChunk;
    const std::size_t end = std::min(bytes, begin + kChunk);
    std::memset(slab + begin, 0, end - begin);
  });
}

}  // namespace xflow
