// Real CPU measurements: fused kernels vs their unfused pipelines.
//
// The GPU results come from the device model; these google-benchmark
// timings demonstrate the same data-movement effect on real hardware --
// single-pass fused kernels beat multi-pass pipelines because they touch
// memory fewer times.
#include <benchmark/benchmark.h>

#include "ops/elementwise.hpp"
#include "ops/fused.hpp"
#include "ops/layernorm.hpp"
#include "ops/softmax.hpp"

namespace {

using namespace xflow;

constexpr std::int64_t kI = 256, kB = 4, kJ = 64;  // medium working set
// i innermost: the vectorization-friendly layout the paper's layout search
// selects for layernorm-family kernels (reduce dim contiguous).
const Shape kIbj("bji", {kB, kJ, kI});
const Shape kBj("bj", {kB, kJ});

void BM_UnfusedBiasDropoutResidualLayerNorm(benchmark::State& state) {
  auto x = TensorH::Random(kIbj, 1);
  auto bias = TensorH::Random(Shape("i", {kI}), 2);
  auto resid_in = TensorH::Random(kIbj, 3);
  auto gamma = TensorH::Random(Shape("i", {kI}), 4);
  auto beta = TensorH::Random(Shape("i", {kI}), 5);
  DropoutMask mask(7, 0.1f);
  TensorH biased(kIbj), dropped(kIbj), m(kIbj), resid(kIbj), y(kIbj);
  TensorF mean(kBj), rstd(kBj);
  for (auto _ : state) {
    ops::BiasForward(x, bias, biased);
    ops::DropoutForward(biased, mask, dropped, m);
    ops::ResidualForward(dropped, resid_in, resid);
    ops::LayerNormForward(resid, gamma, beta, 'i', 1e-5f, y, mean, rstd);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(state.iterations() * kIbj.num_elements() * 2 * 8);
}
BENCHMARK(BM_UnfusedBiasDropoutResidualLayerNorm);

void BM_FusedBDRLN(benchmark::State& state) {
  auto x = TensorH::Random(kIbj, 1);
  auto bias = TensorH::Random(Shape("i", {kI}), 2);
  auto resid_in = TensorH::Random(kIbj, 3);
  auto gamma = TensorH::Random(Shape("i", {kI}), 4);
  auto beta = TensorH::Random(Shape("i", {kI}), 5);
  DropoutMask mask(7, 0.1f);
  TensorH resid(kIbj), m(kIbj), y(kIbj);
  TensorF mean(kBj), rstd(kBj);
  for (auto _ : state) {
    ops::BiasDropoutResidualLayerNorm(x, bias, resid_in, mask, gamma, beta,
                                      'i', 1e-5f, resid, m, y, mean, rstd);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(state.iterations() * kIbj.num_elements() * 2 * 5);
}
BENCHMARK(BM_FusedBDRLN);

void BM_UnfusedBiasReluDropout(benchmark::State& state) {
  const Shape ubj("ubj", {1024, kB, kJ});
  auto x = TensorH::Random(ubj, 1);
  auto bias = TensorH::Random(Shape("u", {1024}), 2);
  DropoutMask mask(9, 0.1f);
  TensorH biased(ubj), relu(ubj), y(ubj), m(ubj);
  for (auto _ : state) {
    ops::BiasForward(x, bias, biased);
    ops::ReluForward(biased, relu);
    ops::DropoutForward(relu, mask, y, m);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_UnfusedBiasReluDropout);

void BM_FusedBRD(benchmark::State& state) {
  const Shape ubj("ubj", {1024, kB, kJ});
  auto x = TensorH::Random(ubj, 1);
  auto bias = TensorH::Random(Shape("u", {1024}), 2);
  DropoutMask mask(9, 0.1f);
  TensorH relu(ubj), y(ubj), m(ubj);
  for (auto _ : state) {
    ops::BiasReluDropout(x, bias, mask, relu, y, m);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_FusedBRD);

void BM_ScaledSoftmax(benchmark::State& state) {
  const Shape hbjk("hbjk", {8, 2, 64, state.range(0)});
  auto beta = TensorH::Random(hbjk, 1);
  DropoutMask mask(11, 0.1f);
  TensorH alpha(hbjk), m(hbjk), saved(hbjk);
  for (auto _ : state) {
    ops::ScaledSoftmaxForward(beta, 'k', 0.125f, mask, alpha, m, saved);
    benchmark::DoNotOptimize(alpha.data());
  }
}
BENCHMARK(BM_ScaledSoftmax)->Arg(64)->Arg(256)->Arg(512);

void BM_LayerNormLayoutSensitivity(benchmark::State& state) {
  // Layout matters on CPUs too: normalizing over a strided dim thrashes
  // the cache once the working set exceeds L2 (here ~8 MB).
  const bool contiguous = state.range(0) != 0;
  const Shape big("bji", {8, 256, 2048});
  auto x = TensorH::Random(big, 1);
  if (!contiguous) x = x.Permuted("ijb");  // i outermost, j/b interleaved
  auto gamma = TensorH::Random(Shape("i", {2048}), 2);
  auto beta = TensorH::Random(Shape("i", {2048}), 3);
  TensorH y(x.shape());
  TensorF mean(Shape("bj", {8, 256})), rstd(Shape("bj", {8, 256}));
  for (auto _ : state) {
    ops::LayerNormForward(x, gamma, beta, 'i', 1e-5f, y, mean, rstd);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_LayerNormLayoutSensitivity)
    ->Arg(1)   // i innermost (contiguous reduction)
    ->Arg(0);  // i strided (non-contiguous reduction)

}  // namespace

BENCHMARK_MAIN();
