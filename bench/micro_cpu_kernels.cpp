// Real CPU measurements: fused kernels vs their unfused pipelines, plus
// roofline-comparable numbers for the memory-bound kernels.
//
// The GPU results come from the device model; these google-benchmark
// timings demonstrate the same data-movement effect on real hardware --
// single-pass fused kernels beat multi-pass pipelines because they touch
// memory fewer times. Every case calls SetBytesProcessed with the kernel's
// compulsory traffic (operands read once + outputs written once), so the
// reported bytes_per_second is an achieved-bandwidth figure comparable
// against the machine's memory roofline, like the GEMM flop/s number.
//
// The softmax / layernorm / BDRLN cases also sweep the thread count (the
// trailing /1 and /8 argument), measuring how the parallel ops layer
// scales; `--json[=path]` dumps all results as a perf baseline.
#include <benchmark/benchmark.h>

#include <chrono>
#include <vector>

#include "bench_common.hpp"
#include "common/threadpool.hpp"
#include "config/autotune.hpp"
#include "graph/builder.hpp"
#include "graph/memory_plan.hpp"
#include "graph/verify.hpp"
#include "ops/elementwise.hpp"
#include "ops/fused.hpp"
#include "ops/layernorm.hpp"
#include "ops/softmax.hpp"
#include "tensor/einsum.hpp"
#include "transformer/arena.hpp"
#include "transformer/stack.hpp"
#include "transformer/training.hpp"

namespace {

using namespace xflow;

constexpr std::int64_t kI = 256, kB = 4, kJ = 64;  // medium working set
// i innermost: the vectorization-friendly layout the paper's layout search
// selects for layernorm-family kernels (reduce dim contiguous).
const Shape kIbj("bji", {kB, kJ, kI});
const Shape kBj("bj", {kB, kJ});

/// Pins the global pool to `threads` for the duration of one benchmark.
class ThreadGuard {
 public:
  explicit ThreadGuard(int threads) { ThreadPool::SetGlobalThreads(threads); }
  ~ThreadGuard() {
    ThreadPool::SetGlobalThreads(ThreadPool::ResolveGlobalThreads());
  }
};

void BM_UnfusedBiasDropoutResidualLayerNorm(benchmark::State& state) {
  ThreadGuard threads(static_cast<int>(state.range(0)));
  auto x = TensorH::Random(kIbj, 1);
  auto bias = TensorH::Random(Shape("i", {kI}), 2);
  auto resid_in = TensorH::Random(kIbj, 3);
  auto gamma = TensorH::Random(Shape("i", {kI}), 4);
  auto beta = TensorH::Random(Shape("i", {kI}), 5);
  DropoutMask mask(7, 0.1f);
  TensorH biased(kIbj), dropped(kIbj), m(kIbj), resid(kIbj), y(kIbj);
  TensorF mean(kBj), rstd(kBj);
  for (auto _ : state) {
    ops::BiasForward(x, bias, biased);
    ops::DropoutForward(biased, mask, dropped, m);
    ops::ResidualForward(dropped, resid_in, resid);
    ops::LayerNormForward(resid, gamma, beta, 'i', 1e-5f, y, mean, rstd);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(state.iterations() * kIbj.num_elements() * 2 * 8);
}
BENCHMARK(BM_UnfusedBiasDropoutResidualLayerNorm)
    ->ArgName("threads")->Arg(1)->Arg(8)->UseRealTime();

void BM_FusedBDRLN(benchmark::State& state) {
  ThreadGuard threads(static_cast<int>(state.range(0)));
  auto x = TensorH::Random(kIbj, 1);
  auto bias = TensorH::Random(Shape("i", {kI}), 2);
  auto resid_in = TensorH::Random(kIbj, 3);
  auto gamma = TensorH::Random(Shape("i", {kI}), 4);
  auto beta = TensorH::Random(Shape("i", {kI}), 5);
  DropoutMask mask(7, 0.1f);
  TensorH resid(kIbj), m(kIbj), y(kIbj);
  TensorF mean(kBj), rstd(kBj);
  for (auto _ : state) {
    ops::BiasDropoutResidualLayerNorm(x, bias, resid_in, mask, gamma, beta,
                                      'i', 1e-5f, resid, m, y, mean, rstd);
    benchmark::DoNotOptimize(y.data());
  }
  // Read x + resid_in, write resid + mask + y.
  state.SetBytesProcessed(state.iterations() * kIbj.num_elements() * 2 * 5);
}
BENCHMARK(BM_FusedBDRLN)->ArgName("threads")->Arg(1)->Arg(8)->UseRealTime();

void BM_UnfusedBiasReluDropout(benchmark::State& state) {
  ThreadGuard threads(static_cast<int>(state.range(0)));
  const Shape ubj("ubj", {1024, kB, kJ});
  auto x = TensorH::Random(ubj, 1);
  auto bias = TensorH::Random(Shape("u", {1024}), 2);
  DropoutMask mask(9, 0.1f);
  TensorH biased(ubj), relu(ubj), y(ubj), m(ubj);
  for (auto _ : state) {
    ops::BiasForward(x, bias, biased);
    ops::ReluForward(biased, relu);
    ops::DropoutForward(relu, mask, y, m);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(state.iterations() * ubj.num_elements() * 2 * 7);
}
BENCHMARK(BM_UnfusedBiasReluDropout)
    ->ArgName("threads")->Arg(1)->Arg(8)->UseRealTime();

void BM_FusedBRD(benchmark::State& state) {
  ThreadGuard threads(static_cast<int>(state.range(0)));
  const Shape ubj("ubj", {1024, kB, kJ});
  auto x = TensorH::Random(ubj, 1);
  auto bias = TensorH::Random(Shape("u", {1024}), 2);
  DropoutMask mask(9, 0.1f);
  TensorH relu(ubj), y(ubj), m(ubj);
  for (auto _ : state) {
    ops::BiasReluDropout(x, bias, mask, relu, y, m);
    benchmark::DoNotOptimize(y.data());
  }
  // Read x, write relu_saved + y + mask.
  state.SetBytesProcessed(state.iterations() * ubj.num_elements() * 2 * 4);
}
BENCHMARK(BM_FusedBRD)
    ->ArgName("threads")->Arg(1)->Arg(8)->UseRealTime();

void BM_SoftmaxForward(benchmark::State& state) {
  ThreadGuard threads(static_cast<int>(state.range(1)));
  const Shape hbjk("hbjk", {8, 2, 64, state.range(0)});
  auto x = TensorH::Random(hbjk, 1);
  TensorH y(hbjk);
  for (auto _ : state) {
    ops::SoftmaxForward(x, 'k', y);
    benchmark::DoNotOptimize(y.data());
  }
  // Read x, write y.
  state.SetBytesProcessed(state.iterations() * hbjk.num_elements() * 2 * 2);
}
BENCHMARK(BM_SoftmaxForward)
    ->ArgNames({"k", "threads"})
    ->Args({256, 1})
    ->Args({256, 8})
    ->UseRealTime();

void BM_ScaledSoftmax(benchmark::State& state) {
  ThreadGuard threads(static_cast<int>(state.range(1)));
  const Shape hbjk("hbjk", {8, 2, 64, state.range(0)});
  auto beta = TensorH::Random(hbjk, 1);
  DropoutMask mask(11, 0.1f);
  TensorH alpha(hbjk), m(hbjk), saved(hbjk);
  for (auto _ : state) {
    ops::ScaledSoftmaxForward(beta, 'k', 0.125f, mask, alpha, m, saved);
    benchmark::DoNotOptimize(alpha.data());
  }
  // Read beta, write alpha + mask + saved softmax (Table III: outputs are
  // 3x the input volume).
  state.SetBytesProcessed(state.iterations() * hbjk.num_elements() * 2 * 4);
}
BENCHMARK(BM_ScaledSoftmax)
    ->ArgNames({"k", "threads"})
    ->Args({64, 1})
    ->Args({256, 1})
    ->Args({256, 8})
    ->Args({512, 1})
    ->Args({512, 8})
    ->UseRealTime();

void BM_LayerNormForward(benchmark::State& state) {
  ThreadGuard threads(static_cast<int>(state.range(0)));
  auto x = TensorH::Random(kIbj, 1);
  auto gamma = TensorH::Random(Shape("i", {kI}), 2);
  auto beta = TensorH::Random(Shape("i", {kI}), 3);
  TensorH y(kIbj);
  TensorF mean(kBj), rstd(kBj);
  for (auto _ : state) {
    ops::LayerNormForward(x, gamma, beta, 'i', 1e-5f, y, mean, rstd);
    benchmark::DoNotOptimize(y.data());
  }
  // Read x, write y.
  state.SetBytesProcessed(state.iterations() * kIbj.num_elements() * 2 * 2);
}
BENCHMARK(BM_LayerNormForward)->ArgName("threads")->Arg(1)->Arg(8)->UseRealTime();

void BM_LayerNormLayoutSensitivity(benchmark::State& state) {
  // Layout matters on CPUs too: normalizing over a strided dim thrashes
  // the cache once the working set exceeds L2 (here ~8 MB). Pinned to one
  // thread so the contiguous-vs-strided ratio (and the baseline JSON rows)
  // stay comparable across hosts.
  ThreadGuard pin(1);
  const bool contiguous = state.range(0) != 0;
  const Shape big("bji", {8, 256, 2048});
  auto x = TensorH::Random(big, 1);
  if (!contiguous) x = x.Permuted("ijb");  // i outermost, j/b interleaved
  auto gamma = TensorH::Random(Shape("i", {2048}), 2);
  auto beta = TensorH::Random(Shape("i", {2048}), 3);
  TensorH y(x.shape());
  TensorF mean(Shape("bj", {8, 256})), rstd(Shape("bj", {8, 256}));
  for (auto _ : state) {
    ops::LayerNormForward(x, gamma, beta, 'i', 1e-5f, y, mean, rstd);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(state.iterations() * big.num_elements() * 2 * 2);
}
BENCHMARK(BM_LayerNormLayoutSensitivity)
    ->Arg(1)   // i innermost (contiguous reduction)
    ->Arg(0);  // i strided (non-contiguous reduction)

void BM_SoftmaxLayoutSensitivity(benchmark::State& state) {
  // Same story for softmax: reducing over a strided dim runs through the
  // engine's transpose-on-the-fly tiles instead of thrashing per element.
  ThreadGuard pin(1);
  const bool contiguous = state.range(0) != 0;
  const Shape big("bjk", {8, 256, 2048});
  auto x = TensorH::Random(big, 1);
  if (!contiguous) x = x.Permuted("kjb");  // k outermost
  TensorH y(x.shape());
  for (auto _ : state) {
    ops::SoftmaxForward(x, 'k', y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(state.iterations() * big.num_elements() * 2 * 2);
}
BENCHMARK(BM_SoftmaxLayoutSensitivity)
    ->Arg(1)   // k innermost (contiguous reduction)
    ->Arg(0);  // k strided (non-contiguous reduction)

// ------------------------------------------------- memory planning cases

void BM_MemoryPlanner(benchmark::State& state) {
  // Planning cost on the BERT-base-shaped Fig. 2 graph (forward+backward),
  // plus the planned-vs-naive peak bytes the perf-trend job tracks.
  const auto g = xflow::graph::BuildEncoder(
      xflow::graph::ModelDims::BertBase(),
      xflow::graph::AlgebraicFusion::kQKV, /*include_backward=*/true);
  const auto opts = xflow::transformer::EncoderPlanOptions<Half>();
  std::size_t peak = 0, naive = 0;
  for (auto _ : state) {
    const auto plan = xflow::graph::PlanMemory(g, opts);
    peak = plan.peak_bytes();
    naive = plan.naive_bytes();
    benchmark::DoNotOptimize(peak);
  }
  state.counters["peak_mb"] =
      benchmark::Counter(static_cast<double>(peak) / 1048576.0);
  state.counters["naive_mb"] =
      benchmark::Counter(static_cast<double>(naive) / 1048576.0);
}
BENCHMARK(BM_MemoryPlanner);

void BM_GraphVerify(benchmark::State& state) {
  // Full three-arg verification (graph + plan + options) of the
  // BERT-base encoder: the executor's pre-flight runs this, so it has
  // to stay cheap enough to leave on in every Debug/test run (<1ms).
  const auto g = xflow::graph::BuildEncoder(
      xflow::graph::ModelDims::BertBase(),
      xflow::graph::AlgebraicFusion::kQKV, /*include_backward=*/true);
  const auto opts = xflow::transformer::EncoderPlanOptions<Half>();
  const auto plan = xflow::graph::PlanMemory(g, opts);
  for (auto _ : state) {
    const auto report = xflow::graph::Verify(g, plan, opts);
    if (!report.ok()) {
      state.SkipWithError(report.Summary().c_str());
      break;
    }
    benchmark::DoNotOptimize(report.issues.data());
  }
}
BENCHMARK(BM_GraphVerify);

void BM_EncoderStackStep(benchmark::State& state) {
  // A full steady-state train step (forward, loss, backward) on a small
  // two-layer stack: planned (arena-backed, zero allocations) vs owning
  // (per-tensor buffers). Single-threaded so the allocator/cache effect
  // is what's measured, not pool scaling.
  using namespace xflow::transformer;
  ThreadGuard threads(1);
  const bool planned = state.range(0) != 0;
  EncoderConfig cfg;
  cfg.dims.b = 2;
  cfg.dims.j = cfg.dims.k = 32;
  cfg.dims.h = 4;
  cfg.dims.p = 16;
  cfg.dims.i = 64;
  cfg.dims.u = 128;
  cfg.dropout_prob = 0.1f;
  constexpr int kLayers = 2;
  EncoderStackT<Half> stack(cfg, kLayers, 3);
  EncoderStackWorkspaceT<Half> workspace(cfg, kLayers);
  std::vector<EncoderActivationsT<Half>> acts;
  std::vector<EncoderGradientsT<Half>> grads;
  if (planned) stack.BindWorkspace(workspace, acts, grads);
  const Shape ibj("ibj", {cfg.dims.i, cfg.dims.b, cfg.dims.j});
  auto x = TensorH::Random(ibj, 5);
  auto target = TensorH::Random(ibj, 6);
  TensorH d_y(ibj);
  for (auto _ : state) {
    const auto& y = stack.Forward(x, acts);
    benchmark::DoNotOptimize(MseLoss(y, target, d_y));
    stack.Backward(d_y, acts, grads);
    benchmark::DoNotOptimize(grads.front().d_x.data());
  }
  if (planned) {
    state.counters["planned_mb"] = benchmark::Counter(
        static_cast<double>(workspace.planned_bytes()) / 1048576.0);
  }
}
BENCHMARK(BM_EncoderStackStep)->ArgName("planned")->Arg(0)->Arg(1);

void BM_EncoderStackStepGraphExec(benchmark::State& state) {
  // The same planned steady-state train step, driven by the graph-level
  // executor instead of the hand-wired kernel sequence: the schedule
  // interpretation overhead should disappear into the kernel time
  // (results are bitwise identical by test).
  using namespace xflow::transformer;
  ThreadGuard threads(1);
  EncoderConfig cfg;
  cfg.dims.b = 2;
  cfg.dims.j = cfg.dims.k = 32;
  cfg.dims.h = 4;
  cfg.dims.p = 16;
  cfg.dims.i = 64;
  cfg.dims.u = 128;
  cfg.dropout_prob = 0.1f;
  cfg.use_graph_executor = true;
  constexpr int kLayers = 2;
  EncoderStackT<Half> stack(cfg, kLayers, 3);
  EncoderStackWorkspaceT<Half> workspace(cfg, kLayers);
  std::vector<EncoderActivationsT<Half>> acts;
  std::vector<EncoderGradientsT<Half>> grads;
  stack.BindWorkspace(workspace, acts, grads);
  const Shape ibj("ibj", {cfg.dims.i, cfg.dims.b, cfg.dims.j});
  auto x = TensorH::Random(ibj, 5);
  auto target = TensorH::Random(ibj, 6);
  TensorH d_y(ibj);
  for (auto _ : state) {
    const auto& y = stack.Forward(x, acts);
    benchmark::DoNotOptimize(MseLoss(y, target, d_y));
    stack.Backward(d_y, acts, grads);
    benchmark::DoNotOptimize(grads.front().d_x.data());
  }
}
BENCHMARK(BM_EncoderStackStepGraphExec);

void BM_EncoderStackStepTaskSched(benchmark::State& state) {
  // The graph-executor train step again, sweeping the task scheduler:
  // sched:0 runs the serial step loop, sched:1 dispatches dependency-free
  // steps concurrently over the work-stealing pool. On a multi-core box
  // the 8-thread sched:1 row should beat sched:0 (independent QKV / dW
  // branches overlap); results are bitwise identical by test.
  using namespace xflow::transformer;
  ThreadGuard threads(static_cast<int>(state.range(0)));
  EncoderConfig cfg;
  cfg.dims.b = 2;
  cfg.dims.j = cfg.dims.k = 32;
  cfg.dims.h = 4;
  cfg.dims.p = 16;
  cfg.dims.i = 64;
  cfg.dims.u = 128;
  cfg.dropout_prob = 0.1f;
  cfg.use_graph_executor = true;
  cfg.use_task_scheduler = state.range(1) != 0;
  constexpr int kLayers = 2;
  EncoderStackT<Half> stack(cfg, kLayers, 3);
  EncoderStackWorkspaceT<Half> workspace(cfg, kLayers);
  std::vector<EncoderActivationsT<Half>> acts;
  std::vector<EncoderGradientsT<Half>> grads;
  stack.BindWorkspace(workspace, acts, grads);
  const Shape ibj("ibj", {cfg.dims.i, cfg.dims.b, cfg.dims.j});
  auto x = TensorH::Random(ibj, 5);
  auto target = TensorH::Random(ibj, 6);
  TensorH d_y(ibj);
  for (auto _ : state) {
    const auto& y = stack.Forward(x, acts);
    benchmark::DoNotOptimize(MseLoss(y, target, d_y));
    stack.Backward(d_y, acts, grads);
    benchmark::DoNotOptimize(grads.front().d_x.data());
  }
}
BENCHMARK(BM_EncoderStackStepTaskSched)
    ->ArgNames({"threads", "sched"})
    ->Args({1, 1})
    ->Args({8, 0})
    ->Args({8, 1})
    ->UseRealTime();

void BM_QkvBranchConcurrency(benchmark::State& state) {
  // The scheduler's motivating shape in isolation: the unfused Q/K/V
  // projection contractions are path-free branches of the graph, so a
  // TaskGroup runs the three GEMMs concurrently (sched:1) instead of
  // back to back (sched:0). Each branch still ParallelFors internally --
  // nested groups are the case the deques exist for.
  ThreadGuard threads(static_cast<int>(state.range(0)));
  const bool sched = state.range(1) != 0;
  const auto spec = EinsumSpec::Parse("phi,ibj->phbj");
  const Shape phi("phi", {64, 8, kI});
  const Shape ibj("ibj", {kI, kB, kJ});
  const Shape phbj("phbj", {64, 8, kB, kJ});
  auto w_q = TensorH::Random(phi, 1);
  auto w_k = TensorH::Random(phi, 2);
  auto w_v = TensorH::Random(phi, 3);
  auto x = TensorH::Random(ibj, 4);
  TensorH q(phbj), k(phbj), v(phbj);
  auto run_q = [&] { EinsumInto(spec, w_q, x, q); };
  auto run_k = [&] { EinsumInto(spec, w_k, x, k); };
  auto run_v = [&] { EinsumInto(spec, w_v, x, v); };
  for (auto _ : state) {
    if (sched) {
      TaskGroup group;
      group.Spawn(run_q);
      group.Spawn(run_k);
      group.Spawn(run_v);
      group.Wait();
    } else {
      run_q();
      run_k();
      run_v();
    }
    benchmark::DoNotOptimize(q.data());
    benchmark::DoNotOptimize(k.data());
    benchmark::DoNotOptimize(v.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          (3 * phi.num_elements() + ibj.num_elements() +
                           3 * phbj.num_elements()) *
                          2);
}
BENCHMARK(BM_QkvBranchConcurrency)
    ->ArgNames({"threads", "sched"})
    ->Args({1, 0})
    ->Args({8, 0})
    ->Args({8, 1})
    ->UseRealTime();

void BM_WholeStackStep(benchmark::State& state) {
  // The whole-stack executor: ONE graph (both layers, forward and
  // backward), ONE plan, ONE slab, so cross-layer transients share bytes
  // and the concurrent dispatcher overlaps steps across layers. ckpt:1
  // recomputes layer 0's forward inside backward (checkpointing) -- the
  // peak_mb counters show the memory it buys; the time delta is what it
  // costs. Bitwise identical to BM_EncoderStackStep's per-layer math by
  // test.
  using namespace xflow::transformer;
  ThreadGuard threads(1);
  const bool ckpt = state.range(0) != 0;
  EncoderConfig cfg;
  cfg.dims.b = 2;
  cfg.dims.j = cfg.dims.k = 32;
  cfg.dims.h = 4;
  cfg.dims.p = 16;
  cfg.dims.i = 64;
  cfg.dims.u = 128;
  cfg.dropout_prob = 0.1f;
  constexpr int kLayers = 2;
  EncoderStackT<Half> stack(cfg, kLayers, 3);
  graph::StackGraphOptions options{.num_layers = kLayers};
  if (ckpt) options.recompute_layers = {0};
  auto arena = MakeStackArena<Half>(cfg, options);
  const Shape ibj("ibj", {cfg.dims.i, cfg.dims.b, cfg.dims.j});
  auto x = TensorH::Random(ibj, 5);
  auto target = TensorH::Random(ibj, 6);
  TensorH d_y(ibj);
  std::vector<EncoderGradientsT<Half>> grads;
  for (auto _ : state) {
    const auto& y = stack.Forward(x, arena);
    benchmark::DoNotOptimize(MseLoss(y, target, d_y));
    stack.Backward(d_y, arena, grads);
    benchmark::DoNotOptimize(grads.front().d_x.data());
  }
  state.counters["peak_mb"] = benchmark::Counter(
      static_cast<double>(arena.plan().PeakBytes()) / 1048576.0);
}
BENCHMARK(BM_WholeStackStep)->ArgName("ckpt")->Arg(0)->Arg(1);

void BM_WholeStackPlan(benchmark::State& state) {
  // Whole-stack planning cost at full BERT-base depth (12 layers,
  // forward+backward, ~10x the per-layer op count): the price of the
  // cross-layer byte sharing BM_MemoryPlanner's single layer cannot see.
  // per_layer_sum_mb is what 12 independently planned slabs would
  // reserve; peak_mb is the one-slab whole-stack peak.
  const auto dims = xflow::graph::ModelDims::BertBase();
  const auto g = xflow::graph::BuildEncoderStack(dims, {.num_layers = 12});
  const auto opts = xflow::transformer::StackPlanOptions<Half>(g);
  const auto layer = xflow::graph::BuildEncoder(
      dims, xflow::graph::AlgebraicFusion::kQKV, /*include_backward=*/true);
  const auto layer_peak =
      xflow::graph::PlanMemory(layer,
                               xflow::transformer::EncoderPlanOptions<Half>())
          .PeakBytes();
  std::size_t peak = 0;
  for (auto _ : state) {
    const auto plan = xflow::graph::PlanMemory(g, opts);
    peak = plan.PeakBytes();
    benchmark::DoNotOptimize(peak);
  }
  state.counters["peak_mb"] =
      benchmark::Counter(static_cast<double>(peak) / 1048576.0);
  state.counters["per_layer_sum_mb"] =
      benchmark::Counter(static_cast<double>(12 * layer_peak) / 1048576.0);
}
BENCHMARK(BM_WholeStackPlan);

void BM_AdamStep(benchmark::State& state) {
  // The mixed-precision optimizer update, now chunked on the pool.
  using namespace xflow::transformer;
  ThreadGuard threads(static_cast<int>(state.range(0)));
  const Shape shape("x", {1 << 20});
  auto master = TensorF::Random(shape, 1);
  TensorH working = master.Cast<Half>();
  auto grad = TensorH::Random(shape, 2);
  MixedPrecisionAdam opt({.lr = 1e-4f});
  for (auto _ : state) {
    opt.Step("w", master, working, grad);
    benchmark::DoNotOptimize(master.data());
  }
  // Read grad + m + v + master, write m + v + master + working.
  state.SetBytesProcessed(state.iterations() * shape.num_elements() *
                          (2 + 4 * 3 + 4 * 3 + 2));
}
BENCHMARK(BM_AdamStep)->ArgName("threads")->Arg(1)->Arg(8)->UseRealTime();

void BM_EinsumLowering(benchmark::State& state) {
  // Specialized gemv/ger kernels vs the generic macro-tile pipeline on
  // the same degenerate contraction (bitwise-identical results by test):
  // the win is skipping the pack/tile machinery whose setup traffic a
  // rank-deficient GEMM cannot amortize.
  const bool ger = state.range(0) != 0;
  const bool lowered = state.range(1) != 0;
  ThreadGuard threads(static_cast<int>(state.range(2)));
  constexpr std::int64_t kM = 1024, kN = 1024, kK = 1024;
  const auto spec = EinsumSpec::Parse("mk,kn->mn");
  const Shape a_shape = ger ? Shape("mk", {kM, 1}) : Shape("mk", {kM, kK});
  const Shape b_shape = ger ? Shape("kn", {1, kN}) : Shape("kn", {kK, 1});
  const Shape out_shape = ger ? Shape("mn", {kM, kN}) : Shape("mn", {kM, 1});
  auto a = TensorH::Random(a_shape, 1);
  auto b = TensorH::Random(b_shape, 2);
  TensorH out(out_shape);
  // kUnclassified classifies on the fly (gemv / ger here); forcing kGemm
  // runs the generic pipeline on the identical operands.
  const auto cls = lowered ? EinsumClass::kUnclassified : EinsumClass::kGemm;
  for (auto _ : state) {
    EinsumLowered(spec, cls, a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          (a_shape.num_elements() + b_shape.num_elements() +
                           out_shape.num_elements()) *
                          2);
}
BENCHMARK(BM_EinsumLowering)
    ->ArgNames({"ger", "lowered", "threads"})
    ->Args({0, 0, 1})
    ->Args({0, 1, 1})
    ->Args({1, 0, 1})
    ->Args({1, 1, 1})
    ->Args({0, 0, 8})
    ->Args({0, 1, 8})
    ->Args({1, 0, 8})
    ->Args({1, 1, 8})
    ->UseRealTime();

void BM_AutotuneWarmVsCold(benchmark::State& state) {
  // What tuning a cold bucket costs (roofline ranking plus best-of-two
  // timing of every execution candidate) vs the warm steady state the
  // executor lives in (one map lookup under a mutex).
  ThreadGuard threads(1);
  const bool warm = state.range(0) != 0;
  const auto spec = EinsumSpec::Parse("mk,kn->mn");
  const Shape a_shape("mk", {256, 256}), b_shape("kn", {256, 1});
  auto a = TensorH::Random(a_shape, 1);
  auto b = TensorH::Random(b_shape, 2);
  TensorH out(Shape("mn", {256, 1}));
  const auto& info = ClassifyEinsum(spec, a_shape, b_shape);
  const auto bucket = config::BucketOf(info.cls, info.extents, 2);
  const config::MeasureFn measure = [&](const EinsumExecConfig& cand) {
    const auto t0 = std::chrono::steady_clock::now();
    EinsumLowered(spec, info.cls, a, b, out, 1.0f, 0.0f, &cand);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };
  if (warm) config::Autotune(bucket, measure, config::AutotuneMode::kMeasure);
  for (auto _ : state) {
    if (!warm) config::ResetAutotuneCacheForTesting();
    const auto entry =
        config::Autotune(bucket, measure, config::AutotuneMode::kMeasure);
    benchmark::DoNotOptimize(entry.measured);
  }
}
BENCHMARK(BM_AutotuneWarmVsCold)->ArgName("warm")->Arg(0)->Arg(1);

/// Google Benchmark renamed Run::error_occurred to Run::skipped in v1.8;
/// probe for whichever member this library version has.
template <typename R>
auto RunFailed(const R& run, int) -> decltype(run.error_occurred) {
  return run.error_occurred;
}
template <typename R>
bool RunFailed(const R& run, long) {
  return static_cast<bool>(run.skipped);
}

/// Console reporter that also collects (name, ns, GB/s) rows for --json.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (RunFailed(run, 0)) continue;
      bench::KernelBenchResult row;
      row.name = run.benchmark_name();
      row.ns = run.GetAdjustedRealTime();
      const auto it = run.counters.find("bytes_per_second");
      if (it != run.counters.end()) {
        row.gbps = static_cast<double>(it->second) * 1e-9;
      }
      rows.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::vector<bench::KernelBenchResult> rows;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = xflow::bench::ConsumeJsonFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty()) {
    xflow::bench::WriteKernelBenchJson(json_path, reporter.rows);
  }
  return 0;
}
