// Fig. 3: the structural fusion patterns. This bench runs the fusion pass
// over the encoder graph and reports every fused kernel, its member
// operators, the eliminated interim tensors and the data-movement saving.
#include <cstdio>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "fusion/fuser.hpp"
#include "fusion/patterns.hpp"
#include "graph/builder.hpp"

int main() {
  using namespace xflow;
  bench::Banner("Fig. 3 / Sec. IV-A", "Operator fusion census");
  bench::PaperNote("12 fused kernels: AIB SM BRD (B)DRLN BSB BLNRD BDRB "
                   "EBSB BS BEI BAOB BAIB; ~22.91% data-movement reduction");

  const auto g =
      BuildEncoder(graph::ModelDims::BertLarge(),
                   graph::AlgebraicFusion::kQKV, /*backward=*/true);
  const auto fused = fusion::FuseMaximally(g);

  AsciiTable table({"Kernel", "Ops fused", "Members", "Interim elems (1e6)",
                    "Reduce dims"});
  for (const auto& k : fused.kernels) {
    if (k.IsContraction(g)) continue;
    std::vector<std::string> members;
    for (int idx : k.op_indices) {
      members.push_back(g.ops()[static_cast<std::size_t>(idx)].name);
    }
    double interim = 0;
    for (const auto& t : k.interim) {
      interim += static_cast<double>(g.tensor(t).shape.num_elements());
    }
    table.AddRow({k.name, StrFormat("%zu", k.op_indices.size()),
                  Join(members, " + "), StrFormat("%.1f", ToMega(interim)),
                  k.reduction_dims.empty() ? "-" : k.reduction_dims});
  }
  std::printf("%s", table.Render().c_str());

  std::printf("\nstructural pattern census (Fig. 3):\n");
  for (const auto& [pattern, count] : fusion::PatternCensus(g, fused)) {
    std::printf("  pattern %-18s %d instances\n",
                fusion::ToString(pattern).c_str(), count);
  }

  std::printf("\nstandard implementation moves %.1fM elements, fused %.1fM"
              " => %.2f%% reduction (paper: ~22.91%%)\n",
              ToMega(static_cast<double>(fused.StandardElementsMoved(g))),
              ToMega(static_cast<double>(fused.FusedElementsMoved(g))),
              100.0 * fused.DataMovementReduction(g));
  return 0;
}
