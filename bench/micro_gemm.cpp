// CPU einsum/GEMM throughput, including the algebraic-fusion comparison of
// Table II measured on the real CPU substrate: three separate projection
// GEMMs vs one stacked Q/K/V GEMM (shared X operand -> better reuse).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/threadpool.hpp"
#include "tensor/einsum.hpp"
#include "tensor/gemm.hpp"

namespace {

using namespace xflow;

std::vector<std::int64_t> Offsets(std::int64_t n, std::int64_t stride) {
  std::vector<std::int64_t> v(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = i * stride;
  return v;
}

// The headline kernel benchmark: square fp32 GEMM straight through
// GemmOffsets. Thread count follows XFLOW_THREADS (the pool is created on
// first use), e.g.:
//   XFLOW_THREADS=1 ./micro_gemm --benchmark_filter=BM_GemmFp32/512
//   XFLOW_THREADS=4 ./micro_gemm --benchmark_filter=BM_GemmFp32/512
void BM_GemmFp32(benchmark::State& state) {
  const std::int64_t dim = state.range(0);
  std::vector<float> a(static_cast<std::size_t>(dim * dim));
  std::vector<float> b(static_cast<std::size_t>(dim * dim));
  std::vector<float> c(static_cast<std::size_t>(dim * dim));
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>(i % 13) * 0.1f;
    b[i] = static_cast<float>(i % 7) * 0.2f;
  }
  const auto row = Offsets(dim, dim);
  const auto col = Offsets(dim, 1);
  for (auto _ : state) {
    GemmOffsets<float, float>(a.data(), b.data(), c.data(), row, col, row,
                              col, row, col, 1.0f, 0.0f);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * dim * dim * dim);
  state.SetLabel("threads=" +
                 std::to_string(ThreadPool::Global().threads()));
}
BENCHMARK(BM_GemmFp32)->Arg(128)->Arg(256)->Arg(512)->UseRealTime();

void BM_EinsumProjection(benchmark::State& state) {
  // Scaled-down projection: [p,h,i] x [i,b,j] -> [p,h,b,j].
  const std::int64_t scale = state.range(0);
  Shape w("phi", {16, 4, 64 * scale});
  Shape x("ibj", {64 * scale, 2, 32});
  auto a = TensorH::Random(w, 1);
  auto b = TensorH::Random(x, 2);
  const auto spec = EinsumSpec::Parse("phi,ibj->phbj");
  for (auto _ : state) {
    auto out = Einsum<Half>(spec, a, b);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          spec.FlopCount(w, x));
}
BENCHMARK(BM_EinsumProjection)->Arg(1)->Arg(2)->Arg(4);

void BM_QkvUnfusedThreeGemms(benchmark::State& state) {
  Shape w("phi", {16, 4, 128});
  Shape x("ibj", {128, 2, 64});
  auto wq = TensorH::Random(w, 1);
  auto wk = TensorH::Random(w, 2);
  auto wv = TensorH::Random(w, 3);
  auto in = TensorH::Random(x, 4);
  const auto spec = EinsumSpec::Parse("phi,ibj->phbj");
  for (auto _ : state) {
    auto q = Einsum<Half>(spec, wq, in);
    auto k = Einsum<Half>(spec, wk, in);
    auto v = Einsum<Half>(spec, wv, in);
    benchmark::DoNotOptimize(q.data());
    benchmark::DoNotOptimize(k.data());
    benchmark::DoNotOptimize(v.data());
  }
}
BENCHMARK(BM_QkvUnfusedThreeGemms);

void BM_QkvFusedStackedGemm(benchmark::State& state) {
  Shape w("phi", {48, 4, 128});  // 3 x 16 stacked along p
  Shape x("ibj", {128, 2, 64});
  auto wqkv = TensorH::Random(w, 1);
  auto in = TensorH::Random(x, 4);
  const auto spec = EinsumSpec::Parse("phi,ibj->phbj");
  for (auto _ : state) {
    auto qkv = Einsum<Half>(spec, wqkv, in);
    benchmark::DoNotOptimize(qkv.data());
  }
}
BENCHMARK(BM_QkvFusedStackedGemm);

void BM_BatchedAttentionScore(benchmark::State& state) {
  const std::int64_t j = state.range(0);
  Shape kk("phbk", {16, 4, 2, j});
  Shape qq("phbj", {16, 4, 2, j});
  auto a = TensorH::Random(kk, 1);
  auto b = TensorH::Random(qq, 2);
  const auto spec = EinsumSpec::Parse("phbk,phbj->hbjk");
  for (auto _ : state) {
    auto beta = Einsum<Half>(spec, a, b);
    benchmark::DoNotOptimize(beta.data());
  }
  state.SetItemsProcessed(state.iterations() * spec.FlopCount(kk, qq));
}
BENCHMARK(BM_BatchedAttentionScore)->Arg(32)->Arg(64)->Arg(128);

void BM_GemmOperandLayout(benchmark::State& state) {
  // Transposed operand layouts cost real time on CPU too (packing reads).
  const bool natural = state.range(0) != 0;
  auto a = TensorH::Random(Shape("mk", {256, 256}), 1);
  auto b = TensorH::Random(Shape("kn", {256, 256}), 2);
  if (!natural) {
    a = a.Permuted("km");
    b = b.Permuted("nk");
  }
  const auto spec = EinsumSpec::Parse("mk,kn->mn");
  for (auto _ : state) {
    auto c = Einsum<Half>(spec, a, b);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmOperandLayout)->Arg(1)->Arg(0);

}  // namespace

BENCHMARK_MAIN();
