// Fig. 1: dataflow graph of multi-head attention with exact flop and
// flop-per-word annotations, plus a DOT rendering.
//
// Paper annotations: projections 8G flop @ ~910 flop/IO; QKT and gamma
// 4G @ ~102; softmax 160-200M @ ~2.5; biases ~4M @ ~0.5.
#include <cstdio>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "graph/analysis.hpp"
#include "graph/builder.hpp"

int main() {
  using namespace xflow;
  bench::Banner("Fig. 1", "MHA forward dataflow (SDFG) annotations");
  bench::PaperNote("Q/K/V 8G@910, QKT & gamma 4G@102, softmax ~0.2G@2.5, "
                   "biases 4M@0.5, out 8G@910");

  const auto g = graph::BuildMhaForward(graph::ModelDims::BertLarge());

  AsciiTable table(
      {"Operator", "Class", "flop", "flop/IO", "Boundedness"});
  for (const auto& op : g.ops()) {
    const auto cost = CostOf(g, op);
    table.AddRow({op.name, ClassGlyph(op.cls()), HumanCount(cost.flop),
                  StrFormat("%.2f", cost.FlopPerIo()),
                  ToString(ClassifyBoundedness(cost))});
  }
  std::printf("%s", table.Render().c_str());

  std::printf("\nGraphviz (render with `dot -Tpng`):\n%s\n",
              graph::ToDot(g).c_str());
  return 0;
}
