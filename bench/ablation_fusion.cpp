// Ablation: what each fusion mechanism buys, per operator class.
//
// Compares four schedules on the device model: (a) fully unfused
// per-operator execution, (b) element-wise/normalization fusion only,
// (c) + algebraic Q/K/V fusion, (d) + global layout selection (= Ours).
// Shows where the paper's 1.30x comes from.
#include <cstdio>

#include "baselines/plans.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"
#include "graph/analysis.hpp"
#include "sim/calibration.hpp"

namespace {

using namespace xflow;

/// Time a per-operator (unfused) schedule with our tuned kernel quality:
/// the same contraction configurations as the full pipeline, but every
/// non-contraction operator launched separately, paying its own loads and
/// stores. Isolates the fusion contribution from kernel quality.
double UnfusedTunedUs(const sim::GpuModel& model,
                      const graph::DataflowGraph& g,
                      const baselines::ExecutionProfile& ours) {
  double total = 0;
  for (std::size_t i = 0; i < g.ops().size(); ++i) {
    const auto& op = g.ops()[i];
    const auto* kernel = ours.KernelForOp(static_cast<int>(i));
    if (kernel == nullptr) continue;
    if (op.cls() == graph::OpClass::kContraction) {
      total += kernel->TotalUs();  // same GEMM either way
      continue;
    }
    // Per-operator launch at the fused kernel's achieved bandwidth, but
    // moving this operator's full I/O (the interim traffic fusion kills).
    const double frac = sim::TunedKernelBandwidthFrac(kernel->name);
    const double bytes =
        static_cast<double>(g.InputElements(op) + g.OutputElements(op)) *
        2.0;
    total += model
                 .MemoryBoundKernel(bytes, bytes, op.flop,
                                    {.bandwidth_frac = frac,
                                     .kernel_launches = 1})
                 .time_us +
             0.5;  // dispatch
  }
  return total;
}

}  // namespace

int main() {
  bench::Banner("Ablation", "Where the end-to-end speedup comes from");
  bench::PaperNote("Sec. VI: fusion + algebraic fusion + global layout "
                   "selection combine into the 1.30x over PyTorch");

  const sim::GpuModel model(sim::DeviceSpec::V100());
  const auto dims = graph::ModelDims::BertLarge();
  const auto g = BuildEncoder(dims, graph::AlgebraicFusion::kQKV, true);

  const auto pt =
      baselines::PlanEncoder(baselines::Framework::kPyTorch, model, dims);
  const auto ours =
      baselines::PlanEncoder(baselines::Framework::kOurs, model, dims);
  const double unfused_tuned = UnfusedTunedUs(model, g, ours);

  AsciiTable table({"Schedule", "total ms", "vs PyTorch"});
  table.AddRow({"PyTorch (per-op, eager)",
                StrFormat("%.2f", pt.TotalUs() / 1000.0), "1.00x"});
  table.AddRow({"tuned kernels, no fusion",
                StrFormat("%.2f", unfused_tuned / 1000.0),
                StrFormat("%.2fx", pt.TotalUs() / unfused_tuned)});
  table.AddRow({"ours (fused + global layouts)",
                StrFormat("%.2f", ours.TotalUs() / 1000.0),
                StrFormat("%.2fx", pt.TotalUs() / ours.TotalUs())});
  std::printf("%s", table.Render().c_str());

  // Per-class gains of the full pipeline.
  std::printf("\nper-class speedups (ours vs PyTorch):\n");
  for (auto cls : {graph::OpClass::kContraction, graph::OpClass::kStatNorm,
                   graph::OpClass::kElementwise}) {
    std::printf("  %-28s %.2fx  (paper: %s)\n", ToString(cls).c_str(),
                pt.ClassUs(cls) / ours.ClassUs(cls),
                cls == graph::OpClass::kContraction     ? "1.12x"
                : cls == graph::OpClass::kStatNorm      ? "1.29x"
                                                        : "1.49x");
  }

  // Kernel-launch reduction from fusion.
  std::printf("\nkernel launches: PyTorch %zu -> ours %zu\n",
              pt.kernels.size(), ours.kernels.size());
  return 0;
}
