// Fig. 6 / Sec. VI-A: global configuration selection via SSSP over the
// layout-transition DAG, compared against the per-operator lower bound
// (paper: within 4%) and a greedy per-operator baseline (the ablation for
// the design choice of global vs local layout selection).
#include <cstdio>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "config/selection.hpp"
#include "graph/builder.hpp"

int main() {
  using namespace xflow;
  bench::Banner("Fig. 6", "Configuration selection graph & SSSP");
  bench::PaperNote("selected configuration within 4% of the per-operator "
                   "optimum; SSSP is linear-time on the DAG");

  const auto g =
      BuildEncoder(graph::ModelDims::BertLarge(),
                   graph::AlgebraicFusion::kQKV, /*backward=*/true);
  const auto fused = fusion::FuseMaximally(g);
  const sim::GpuModel model(sim::DeviceSpec::V100());
  const auto result = config::SelectConfigurations(model, g, fused);

  AsciiTable table({"Stage", "in layout", "out layout", "chosen us",
                    "stage best us", "penalty"});
  for (const auto& s : result.stages) {
    table.AddRow({s.kernel_name, s.in_layout, s.out_layout,
                  StrFormat("%.1f", s.time_us),
                  StrFormat("%.1f", s.best_time_us),
                  StrFormat("%.3fx", s.time_us / s.best_time_us)});
  }
  std::printf("%s", table.Render().c_str());

  const double greedy = config::GreedySelectionTime(model, g, fused);
  std::printf("\nselection graph: %d layout nodes, %d edges\n",
              result.graph_nodes, result.graph_edges);
  std::printf("SSSP total:            %.1f us\n", result.total_time_us);
  std::printf("per-stage lower bound: %.1f us  (gap: %.2f%%, paper: <4%%)\n",
              result.per_stage_lower_bound_us,
              100.0 * result.GapToLowerBound());
  std::printf("greedy local choices:  %.1f us  (global advantage: %.2f%%)\n",
              greedy, 100.0 * (greedy / result.total_time_us - 1.0));
  return 0;
}
