// Fig. 2: forward + backward dataflow of a BERT-large encoder layer with
// flop and flop/IO annotations per operator and per-block aggregates.
//
// Paper annotations (decimal flop): MHA 43G, linears 34G each @ ~1365
// flop/IO, element-wise ops ~4-29M @ ~1/3, layernorms @ ~2-3.
#include <cstdio>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "graph/analysis.hpp"
#include "graph/builder.hpp"

int main() {
  using namespace xflow;
  bench::Banner("Fig. 2", "BERT encoder layer dataflow annotations");
  bench::PaperNote("MHA block 43G flop; linear layers 34G @ ~1365 flop/IO; "
                   "element-wise @ ~1/3; TC >> SN >> EW in flop");

  const auto g =
      BuildEncoder(graph::ModelDims::BertLarge(),
                   graph::AlgebraicFusion::kQKV, /*backward=*/true);

  AsciiTable table({"Operator", "Class", "flop", "flop/IO", "Boundedness"});
  double mha_flop = 0;
  bool in_backward = false;
  for (const auto& op : g.ops()) {
    if (op.name == "layernorm 2 dW") {
      table.AddSeparator();
      in_backward = true;
    }
    const auto cost = CostOf(g, op);
    table.AddRow({op.name, ClassGlyph(op.cls()), HumanCount(cost.flop),
                  cost.FlopPerIo() < 1
                      ? StrFormat("1/%.0f", 1.0 / cost.FlopPerIo())
                      : StrFormat("%.0f", cost.FlopPerIo()),
                  ToString(ClassifyBoundedness(cost))});
    if (!in_backward &&
        (op.name == "Q,K,V" || op.name == "QKT" || op.name == "gamma" ||
         op.name == "out" || op.name == "scaled softmax" ||
         op.name == "input bias")) {
      mha_flop += cost.flop;
    }
  }
  std::printf("%s", table.Render().c_str());

  std::printf("\nMHA block total: %s flop (paper: 43G)\n",
              HumanCount(mha_flop).c_str());
  const auto by_class = FlopByClass(g);
  std::printf("class totals: TC %s, SN %s, EW %s flop\n",
              HumanCount(by_class.at(graph::OpClass::kContraction)).c_str(),
              HumanCount(by_class.at(graph::OpClass::kStatNorm)).c_str(),
              HumanCount(by_class.at(graph::OpClass::kElementwise)).c_str());
  return 0;
}
