// Fig. 4: tensor contraction performance over all data layouts and
// algorithms, for the twelve contraction shapes of encoder training, on
// tensor cores and on the fp16 FPUs. Violin distributions become textual
// density sketches; best/worst values are printed like the figure's labels.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "layouts/contraction_space.hpp"

int main() {
  using namespace xflow;
  bench::Banner("Fig. 4", "Tensor contraction performance by layout");
  bench::PaperNote("per tile: best/worst time and %-of-peak distribution; "
                   "TC >> FP16 except when a dim is 64; heuristic up to "
                   "14.24% off best");

  const sim::GpuModel model(sim::DeviceSpec::V100());
  const auto tiles =
      layouts::PaperContractionTiles(graph::ModelDims::BertLarge());

  AsciiTable table({"Tile (M,N,K,B)", "Units", "best ms", "worst ms",
                    "best %pk", "density (over %peak)"});
  for (const auto& tile : tiles) {
    for (bool tc : {true, false}) {
      const auto samples = layouts::SweepContraction(
          model, tile.extents, tc, tile.extents.batch > 1);
      std::vector<double> pct;
      double best_us = 1e30, worst_us = 0, best_pct = 0;
      for (const auto& s : samples) {
        pct.push_back(s.timing.pct_peak);
        best_us = std::min(best_us, s.timing.time_us);
        worst_us = std::max(worst_us, s.timing.time_us);
        best_pct = std::max(best_pct, s.timing.pct_peak);
      }
      const auto summary = Summarize(pct, 28);
      table.AddRow(
          {StrFormat("%s (%ld,%ld,%ld,%ld)", tile.label.c_str(),
                     tile.extents.m, tile.extents.n, tile.extents.k,
                     tile.extents.batch),
           tc ? "TensorCore" : "FP16", StrFormat("%.2f", best_us / 1000.0),
           StrFormat("%.2f", worst_us / 1000.0),
           StrFormat("%.1f", best_pct), RenderDensity(summary)});
    }
    table.AddSeparator();
  }
  std::printf("%s", table.Render().c_str());

  // The heuristic-vs-best gap (Sec. V-A).
  double worst_gap = 0;
  std::string worst_tile;
  for (const auto& tile : tiles) {
    const int chosen = model.HeuristicAlgorithm(tile.extents);
    double best = 0;
    for (int a = 0; a < sim::kNumGemmAlgorithms; ++a) {
      best = std::max(best, model.AlgorithmFactor(tile.extents, a));
    }
    const double gap =
        1.0 - model.AlgorithmFactor(tile.extents, chosen) / best;
    if (gap > worst_gap) {
      worst_gap = gap;
      worst_tile = tile.label;
    }
  }
  std::printf("\ncuBLAS-style heuristic is up to %.2f%% worse than the best"
              " algorithm (at %s; paper: 14.24%% at QKT dX1)\n",
              100.0 * worst_gap, worst_tile.c_str());
  return 0;
}
