// Shared helpers for the experiment-reproduction binaries.
#pragma once

#include <cstdio>
#include <string>

#include "common/strings.hpp"

namespace xflow::bench {

inline void Banner(const std::string& experiment, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s -- %s\n", experiment.c_str(), title.c_str());
  std::printf("(device model: V100, 125 Tflop/s TC peak, 31.4 Tflop/s fp16, "
              "900 GB/s HBM)\n");
  std::printf("================================================================\n");
}

inline void PaperNote(const std::string& note) {
  std::printf("paper reference: %s\n\n", note.c_str());
}

}  // namespace xflow::bench
