// Shared helpers for the experiment-reproduction binaries.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/strings.hpp"

namespace xflow::bench {

inline void Banner(const std::string& experiment, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s -- %s\n", experiment.c_str(), title.c_str());
  std::printf("(device model: V100, 125 Tflop/s TC peak, 31.4 Tflop/s fp16, "
              "900 GB/s HBM)\n");
  std::printf("================================================================\n");
}

inline void PaperNote(const std::string& note) {
  std::printf("paper reference: %s\n\n", note.c_str());
}

// ------------------------------------------------------------- perf JSON
//
// The micro-kernel benches can dump their results as a machine-readable
// baseline (BENCH_ops.json) so perf changes are trackable across PRs.

/// One measured kernel configuration.
struct KernelBenchResult {
  std::string name;  // benchmark name, including args (e.g. "/256")
  double ns = 0.0;   // wall time per iteration, nanoseconds
  double gbps = 0.0; // achieved bandwidth, GB/s (0 when not reported)
};

/// Consumes a `--json[=path]` flag from argv (so it never reaches the
/// benchmark library's flag parser). Returns the output path, empty when
/// the flag is absent; the bare flag defaults to BENCH_ops.json.
inline std::string ConsumeJsonFlag(int* argc, char** argv) {
  std::string path;
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    if (std::strcmp(argv[r], "--json") == 0) {
      path = "BENCH_ops.json";
    } else if (std::strncmp(argv[r], "--json=", 7) == 0) {
      path = argv[r] + 7;
    } else {
      argv[w++] = argv[r];
    }
  }
  *argc = w;
  return path;
}

/// Writes the collected results as a JSON array of
/// {"name", "ns_per_iter", "gb_per_s"} rows.
inline void WriteKernelBenchJson(const std::string& path,
                                 const std::vector<KernelBenchResult>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "  {\"name\": \"%s\", \"ns_per_iter\": %.1f, "
                 "\"gb_per_s\": %.3f}%s\n",
                 rows[i].name.c_str(), rows[i].ns, rows[i].gbps,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("bench: wrote %zu results to %s\n", rows.size(), path.c_str());
}

}  // namespace xflow::bench
