// Table IV: multi-head attention performance for BERT (ms).
//
// Paper: forward  TF+XLA 1.60 | PT 1.90 | cuDNN 131 | Ours 1.25
//        backward TF+XLA 2.25 | PT 2.77 | cuDNN 652 | Ours 1.86
// cuDNN's experimental MHA entry point launches enormous numbers of tiny
// softmax kernels and sits orders of magnitude behind everyone else.
#include <cstdio>

#include "baselines/plans.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"

int main() {
  using namespace xflow;
  using baselines::Framework;
  bench::Banner("Table IV", "Multi-head attention performance for BERT");
  bench::PaperNote("fwd 1.60/1.90/131/1.25 ms, bwd 2.25/2.77/652/1.86 ms "
                   "(TF+XLA/PT/cuDNN/Ours)");

  const sim::GpuModel model(sim::DeviceSpec::V100());
  const auto dims = graph::ModelDims::BertLarge();

  AsciiTable table({"", "TF+XLA", "PT", "cuDNN", "Ours"});
  std::vector<std::string> fwd = {"Forward (ms)"};
  std::vector<std::string> bwd = {"Backward (ms)"};
  for (auto fw : {Framework::kTensorFlowXla, Framework::kPyTorch,
                  Framework::kCuDnn, Framework::kOurs}) {
    const auto profile = baselines::PlanEncoder(
        fw, model, dims, baselines::PlanScope::kMhaOnly);
    fwd.push_back(StrFormat("%.2f", profile.ForwardUs() / 1000.0));
    bwd.push_back(StrFormat("%.2f", profile.BackwardUs() / 1000.0));
  }
  table.AddRow(fwd);
  table.AddRow(bwd);
  std::printf("%s", table.Render().c_str());
  std::printf("\nexpected shape: Ours < TF+XLA < PT, with cuDNN orders of "
              "magnitude slower\n");
  return 0;
}
