// Table I: proportions of flop and runtime per operator class in PyTorch.
//
// Paper values: tensor contraction 99.80% flop / 61.0% runtime,
// statistical normalization 0.17% / 25.5%, element-wise 0.03% / 13.5%.
#include <cstdio>

#include "baselines/plans.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"
#include "graph/analysis.hpp"

int main() {
  using namespace xflow;
  bench::Banner("Table I", "Proportions for operator classes in PyTorch");
  bench::PaperNote(
      "TC 99.80% flop / 61.0% runtime; SN 0.17% / 25.5%; EW 0.03% / 13.5%");

  const auto dims = graph::ModelDims::BertLarge();
  const auto g = BuildEncoder(dims, graph::AlgebraicFusion::kQKV, true);
  const sim::GpuModel model(sim::DeviceSpec::V100());
  const auto pt =
      baselines::PlanEncoder(baselines::Framework::kPyTorch, model, dims);

  const auto flop_by_class = graph::FlopByClass(g);
  const double total_flop = graph::TotalFlop(g);
  const double total_time = pt.TotalUs();

  AsciiTable table({"Operator class", "% flop", "% runtime"});
  for (auto cls : {graph::OpClass::kContraction, graph::OpClass::kStatNorm,
                   graph::OpClass::kElementwise}) {
    table.AddRow({ToString(cls),
                  StrFormat("%.2f", 100.0 * flop_by_class.at(cls) / total_flop),
                  StrFormat("%.1f", 100.0 * pt.ClassUs(cls) / total_time)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("\nmeasured on the modeled PyTorch execution plan "
              "(%zu kernels, %.2f ms total)\n",
              pt.kernels.size(), total_time / 1000.0);
  return 0;
}
