// Ablation: how the speedup over frameworks scales with batch size and
// sequence length -- extends Table V's two configurations into a sweep.
// Expectation from the paper's analysis: at larger batch/sequence the
// workload becomes more contraction-dominated, so the data-movement
// advantage shrinks (DeepSpeed parity at B=96/L=128) but never inverts.
#include <cstdio>

#include "baselines/plans.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"

int main() {
  using namespace xflow;
  using baselines::Framework;
  bench::Banner("Ablation", "Speedup vs model configuration");
  bench::PaperNote("Table V primary (B=8, L=512) and second (B=96, L=128)"
                   " configurations, generalized to a sweep");

  const sim::GpuModel model(sim::DeviceSpec::V100());
  AsciiTable table({"B", "L", "PT ms", "DS ms", "Ours ms", "vs PT",
                    "vs DS"});

  struct Config {
    std::int64_t b, l;
  };
  for (const auto& c : {Config{2, 512}, Config{8, 512}, Config{8, 128},
                        Config{32, 128}, Config{96, 128}, Config{16, 256}}) {
    auto d = graph::ModelDims::BertLarge();
    d.b = c.b;
    d.j = d.k = c.l;
    const auto pt = PlanEncoder(Framework::kPyTorch, model, d);
    const auto ds = PlanEncoder(Framework::kDeepSpeed, model, d);
    const auto ours = PlanEncoder(Framework::kOurs, model, d);
    table.AddRow({StrFormat("%ld", c.b), StrFormat("%ld", c.l),
                  StrFormat("%.2f", pt.TotalUs() / 1000.0),
                  StrFormat("%.2f", ds.TotalUs() / 1000.0),
                  StrFormat("%.2f", ours.TotalUs() / 1000.0),
                  StrFormat("%.2fx", pt.TotalUs() / ours.TotalUs()),
                  StrFormat("%.2fx", ds.TotalUs() / ours.TotalUs())});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("\nexpected shape: speedup vs PyTorch stays > 1 everywhere;"
              " margin vs DeepSpeed narrows as GEMMs dominate\n");
  return 0;
}
