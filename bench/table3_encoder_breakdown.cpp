// Table III: flop analysis for a BERT encoder layer -- the paper's central
// table. For every operator: required Gflop (2^30 convention), input and
// output element counts (1e6), PyTorch time and % peak, our time, % peak
// and MUE, the kernel-level speedup, and the fused kernel covering it.
//
// Paper bottom line: TC 4951 -> 4411 us, SN 2063 -> 1591 us,
// EW 1096 -> 735 us; total 8110 -> 6739 us (1.20x kernel-level).
#include <cstdio>
#include <map>

#include "baselines/plans.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "graph/analysis.hpp"

int main() {
  using namespace xflow;
  bench::Banner("Table III", "Flop analysis for BERT encoder layer");
  bench::PaperNote("totals: TC 4951->4411us, SN 2063->1591us, EW 1096->735us,"
                   " all 8110->6739us (1.20x)");

  const auto dims = graph::ModelDims::BertLarge();
  const auto g = BuildEncoder(dims, graph::AlgebraicFusion::kQKV, true);
  const auto fused = fusion::FuseMaximally(g);
  const sim::GpuModel model(sim::DeviceSpec::V100());
  const auto selection = config::SelectConfigurations(model, g, fused);
  const auto pt = baselines::PlanEncoder(baselines::Framework::kPyTorch,
                                         model, g, fused, selection);
  const auto ours = baselines::PlanEncoder(baselines::Framework::kOurs,
                                           model, g, fused, selection);

  AsciiTable table({"Operator", "C", "Gflop", "In(1e6)", "Out(1e6)",
                    "PT us", "PT %pk", "Our us", "Our %pk", "MUE", "Speedup",
                    "Kernel"});
  // Our fused kernels cover several rows; print time on the first row and
  // account it once in totals.
  std::map<const baselines::PlannedKernel*, bool> printed;
  std::map<graph::OpClass, double> pt_class_us, our_class_us;

  for (std::size_t i = 0; i < g.ops().size(); ++i) {
    const auto& op = g.ops()[i];
    const auto cost = CostOf(g, op);
    const auto* ptk = pt.KernelForOp(static_cast<int>(i));
    const auto* ourk = ours.KernelForOp(static_cast<int>(i));
    if (ptk == nullptr || ourk == nullptr) continue;

    pt_class_us[op.cls()] += ptk->TotalUs();
    std::string our_time = "\"";
    std::string our_pk = "\"";
    std::string mue = "\"";
    std::string speedup = "\"";
    if (!printed[ourk]) {
      printed[ourk] = true;
      our_class_us[op.cls()] += ourk->TotalUs();
      our_time = StrFormat("%.0f", ourk->TotalUs());
      our_pk = StrFormat("%.1f", ourk->timing.pct_peak);
      mue = StrFormat("%.0f", ourk->timing.mue);
      // Kernel-level speedup: PyTorch rows covered by this fused kernel.
      double pt_sum = 0;
      for (int idx : ourk->op_indices) {
        if (const auto* p = pt.KernelForOp(idx)) pt_sum += p->TotalUs();
      }
      speedup = StrFormat("%.2f", pt_sum / ourk->TotalUs());
    }
    table.AddRow({op.name, ClassGlyph(op.cls()),
                  StrFormat("%.3f", ToGflop(cost.flop)),
                  StrFormat("%.1f", ToMega(cost.input_elems)),
                  StrFormat("%.1f", ToMega(cost.output_elems)),
                  StrFormat("%.0f", ptk->TotalUs()),
                  StrFormat("%.1f", ptk->timing.pct_peak), our_time, our_pk,
                  mue, speedup, ourk->name});
    if (op.name == "layernorm 2") table.AddSeparator();  // fwd/bwd divide
  }

  table.AddSeparator();
  double pt_total = 0, our_total = 0;
  for (auto cls : {graph::OpClass::kContraction, graph::OpClass::kStatNorm,
                   graph::OpClass::kElementwise}) {
    table.AddRow({"TOTAL " + ToString(cls), ClassGlyph(cls), "", "", "",
                  StrFormat("%.0f", pt_class_us[cls]), "",
                  StrFormat("%.0f", our_class_us[cls]), "", "",
                  StrFormat("%.2f", pt_class_us[cls] / our_class_us[cls]),
                  ""});
    pt_total += pt_class_us[cls];
    our_total += our_class_us[cls];
  }
  table.AddRow({"TOTAL", "", StrFormat("%.1f", ToGflop(TotalFlop(g))), "", "",
                StrFormat("%.0f", pt_total), "", StrFormat("%.0f", our_total),
                "", "", StrFormat("%.2f", pt_total / our_total), ""});
  std::printf("%s", table.Render().c_str());

  std::printf("\ndata-movement reduction vs standard implementation: %.2f%%"
              " (paper: ~22.91%%)\n",
              100.0 * fused.DataMovementReduction(g));
  std::printf("a kernel is memory-bound when MUE > %%peak (paper's bolding"
              " rule)\n");
  return 0;
}
