// Table V: full BERT encoder layer performance (ms), plus the paper's
// second configuration (B=96, L=128) and the headline speedups.
//
// Paper: fwd PT 3.45 | TF+XLA 3.2 | DS 2.8 | Ours 2.63
//        bwd PT 5.69 | TF+XLA 5.2 | DS 4.8 | Ours 4.38
// => 1.30x over PyTorch, 1.20x over TF+XLA, 1.08x over DeepSpeed.
// Second configuration: PT 18.43, DS 16.19, Ours 16.22 ms.
#include <cstdio>

#include "baselines/plans.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"

namespace {

using namespace xflow;
using baselines::Framework;

void RunConfiguration(const char* label, const graph::ModelDims& dims) {
  const sim::GpuModel model(sim::DeviceSpec::V100());
  std::printf("--- %s (B=%ld, L=%ld) ---\n", label, dims.b, dims.j);

  AsciiTable table({"", "PT", "TF+XLA", "DS", "Ours"});
  std::vector<std::string> fwd = {"Forward (ms)"};
  std::vector<std::string> bwd = {"Backward (ms)"};
  std::vector<std::string> tot = {"Total (ms)"};
  double ours_total = 0, pt_total = 0, tf_total = 0, ds_total = 0;
  for (auto fw : {Framework::kPyTorch, Framework::kTensorFlowXla,
                  Framework::kDeepSpeed, Framework::kOurs}) {
    const auto profile = baselines::PlanEncoder(fw, model, dims);
    fwd.push_back(StrFormat("%.2f", profile.ForwardUs() / 1000.0));
    bwd.push_back(StrFormat("%.2f", profile.BackwardUs() / 1000.0));
    tot.push_back(StrFormat("%.2f", profile.TotalUs() / 1000.0));
    switch (fw) {
      case Framework::kPyTorch: pt_total = profile.TotalUs(); break;
      case Framework::kTensorFlowXla: tf_total = profile.TotalUs(); break;
      case Framework::kDeepSpeed: ds_total = profile.TotalUs(); break;
      case Framework::kOurs: ours_total = profile.TotalUs(); break;
      default: break;
    }
  }
  table.AddRow(fwd);
  table.AddRow(bwd);
  table.AddRow(tot);
  std::printf("%s", table.Render().c_str());
  std::printf("speedups: %.2fx vs PyTorch, %.2fx vs TF+XLA, %.2fx vs "
              "DeepSpeed\n\n",
              pt_total / ours_total, tf_total / ours_total,
              ds_total / ours_total);
}

}  // namespace

int main() {
  bench::Banner("Table V", "Full BERT encoder layer performance");
  bench::PaperNote("fwd 3.45/3.2/2.8/2.63 ms; bwd 5.69/5.2/4.8/4.38 ms; "
                   "1.30x / 1.20x / 1.08x; B=96 cfg: 18.43/16.19/16.22 ms");

  RunConfiguration("primary configuration", graph::ModelDims::BertLarge());
  RunConfiguration("second configuration", graph::ModelDims::BertLargeB96());
  return 0;
}
