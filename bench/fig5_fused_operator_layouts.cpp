// Fig. 5: runtime distributions over every configuration (input/output
// layouts x vectorization dim x warp-reduction dim) of the fused
// element-wise and statistical-normalization kernels.
//
// Paper: long-tailed distributions -- e.g. AIB best 0.065 ms worst 5.3 ms,
// BDRB best 0.402 ms worst 81 ms; vectorized layouts dominate; joining the
// reduce and vector dims frees registers.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "fusion/fuser.hpp"
#include "graph/builder.hpp"
#include "layouts/fused_space.hpp"

int main() {
  using namespace xflow;
  bench::Banner("Fig. 5", "Fused kernel performance by configuration");
  bench::PaperNote("long tails: AIB 0.065..5.3 ms, SM 0.402..81 ms scale; "
                   "best configs vectorize and align reduce/vector dims");

  const auto g =
      BuildEncoder(graph::ModelDims::BertLarge(),
                   graph::AlgebraicFusion::kQKV, /*backward=*/true);
  const auto fused = fusion::FuseMaximally(g);
  const sim::GpuModel model(sim::DeviceSpec::V100());

  AsciiTable table({"Kernel", "configs", "best ms", "worst ms", "median ms",
                    "density (over log time)", "best config"});
  for (const auto& k : fused.kernels) {
    if (k.IsContraction(g)) continue;
    const auto space = layouts::SpaceFromKernel(g, k);
    const auto samples = layouts::SweepFusedKernel(model, space);
    std::vector<double> log_times;
    double best = 1e30, worst = 0;
    layouts::FusedConfig best_cfg;
    for (const auto& s : samples) {
      log_times.push_back(std::log10(s.timing.time_us));
      if (s.timing.time_us < best) {
        best = s.timing.time_us;
        best_cfg = s.config;
      }
      worst = std::max(worst, s.timing.time_us);
    }
    const auto summary = Summarize(log_times, 24);
    table.AddRow({k.name, StrFormat("%zu", samples.size()),
                  StrFormat("%.3f", best / 1000.0),
                  StrFormat("%.3f", worst / 1000.0),
                  StrFormat("%.3f", std::pow(10.0, summary.median) / 1000.0),
                  RenderDensity(summary), best_cfg.Describe()});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("\nexpected shape: bests in the tens-to-hundreds of us, worsts"
              " 1-2 orders of magnitude slower (long tails)\n");
  return 0;
}
