// Table II: algebraic fusion for the MHA Q/K/V input projections (us).
//
// Paper: forward  345 (unfused) / 294 (QK fused) / 275 (QKV fused);
//        backward 342 / 312 / 291. Fully fusing the batched MMM is best --
// stacking enables data reuse of X, and cuBLAS kernels occupy the whole
// GPU anyway, so task parallelism between separate projections buys
// nothing (Sec. IV-D).
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "graph/builder.hpp"
#include "sim/kernel_model.hpp"

namespace {

using namespace xflow;

/// Forward projection time: one stacked GEMM per group of fused
/// projections; backward runs dX and dW per group.
double ProjectionUs(const sim::GpuModel& model, const graph::ModelDims& d,
                    std::initializer_list<int> group_sizes, bool backward) {
  double total = 0;
  for (int stack : group_sizes) {
    const GemmExtents fwd{.m = stack * d.p * d.h,
                          .n = d.b * d.j,
                          .k = d.i,
                          .batch = 1};
    sim::KernelTiming best;
    best.time_us = 1e30;
    for (int algo = 0; algo < sim::kNumGemmAlgorithms; ++algo) {
      auto t = model.Contraction(fwd, {.algorithm = algo});
      if (t.time_us < best.time_us) best = t;
    }
    if (!backward) {
      total += best.time_us;
      continue;
    }
    // dX: [W...]^T [dQ~ dK~ dV~]; dW: X [d...]^T -- both over the stack.
    const GemmExtents dx{.m = d.i,
                         .n = d.b * d.j,
                         .k = stack * d.p * d.h,
                         .batch = 1};
    const GemmExtents dw{.m = stack * d.p * d.h,
                         .n = d.i,
                         .k = d.b * d.j,
                         .batch = 1};
    for (const auto& e : {dx, dw}) {
      sim::KernelTiming b2;
      b2.time_us = 1e30;
      for (int algo = 0; algo < sim::kNumGemmAlgorithms; ++algo) {
        auto t = model.Contraction(e, {.algorithm = algo});
        if (t.time_us < b2.time_us) b2 = t;
      }
      total += b2.time_us;
    }
  }
  // Backward halves the per-group pair count in the table's convention
  // (dX and dW each reported once per configuration).
  return backward ? total / 2 : total;
}

}  // namespace

int main() {
  bench::Banner("Table II", "Algebraic fusion for MHA Q/K/V (us)");
  bench::PaperNote("fwd 345/294/275, bwd 342/312/291 (unfused/QK/QKV)");

  const sim::GpuModel model(sim::DeviceSpec::V100());
  const auto d = graph::ModelDims::BertLarge();

  AsciiTable table({"", "Unfused", "QK fused", "QKV fused"});
  table.AddRow(
      {"Forward (us)",
       StrFormat("%.0f", ProjectionUs(model, d, {1, 1, 1}, false)),
       StrFormat("%.0f", ProjectionUs(model, d, {2, 1}, false)),
       StrFormat("%.0f", ProjectionUs(model, d, {3}, false))});
  table.AddRow(
      {"Backward (us)",
       StrFormat("%.0f", ProjectionUs(model, d, {1, 1, 1}, true)),
       StrFormat("%.0f", ProjectionUs(model, d, {2, 1}, true)),
       StrFormat("%.0f", ProjectionUs(model, d, {3}, true))});
  std::printf("%s", table.Render().c_str());
  std::printf("\nexpected shape: QKV fused < QK fused < unfused in both "
              "directions\n");
  return 0;
}
